"""Run manifests: what ran, where, and what it counted.

A :class:`RunManifest` is the machine-readable receipt of one run —
the command and arguments, the seed, the executor, an environment
stamp (library/python/numpy versions, git SHA, hostname), per-phase
wall time from the recorder's timers, and every counter total. It is
written next to experiment output (the CLI places it beside the
``--trace`` file) so a result can always be traced back to the exact
code and configuration that produced it — the prerequisite for the
sweep fabric's resumable shard manifests.

:func:`environment_stamp` is also what ``benchmarks/conftest.py``
embeds in ``bench.json`` so ``benchmarks/compare.py`` can refuse
cross-version comparisons.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["RunManifest", "environment_stamp"]


def _git_sha() -> Optional[str]:
    """The repository HEAD SHA, or None outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def environment_stamp() -> Dict[str, Any]:
    """Versions, platform and provenance of the running library."""
    from repro import __version__

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "git_sha": _git_sha(),
    }


@dataclass
class RunManifest:
    """The receipt of one observed run; serialize with :meth:`write`."""

    command: str
    args: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    executor: Optional[str] = None
    wall_seconds: float = 0.0
    environment: Dict[str, Any] = field(default_factory=environment_stamp)
    #: Counter totals from the recorder (e.g. ``engine.steps``).
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, Any] = field(default_factory=dict)
    #: Per-phase wall time: name → {"seconds": ..., "count": ...}.
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_recorder(
        cls,
        recorder: Any,
        *,
        command: str,
        args: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        executor: Optional[str] = None,
        wall_seconds: float = 0.0,
    ) -> "RunManifest":
        """Fold a :class:`~repro.obs.recorder.MetricsRecorder` into a manifest."""
        snapshot = recorder.snapshot() if hasattr(recorder, "snapshot") else {}
        return cls(
            command=command,
            args=dict(args or {}),
            seed=seed,
            executor=executor,
            wall_seconds=wall_seconds,
            counters=snapshot.get("counters", {}),
            gauges=snapshot.get("gauges", {}),
            phases=snapshot.get("timers", {}),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "command": self.command,
            "args": self.args,
            "seed": self.seed,
            "executor": self.executor,
            "wall_seconds": round(self.wall_seconds, 6),
            "environment": self.environment,
            "counters": self.counters,
            "gauges": self.gauges,
            "phases": self.phases,
        }

    def write(self, path: str, *, force: bool = True) -> str:
        """Write the manifest as pretty JSON crash-safely; returns *path*.

        The document lands via an atomic rename (temp file +
        ``os.replace``), so an interrupted write can never leave a
        truncated manifest. With ``force=False`` an existing file is
        refused instead of silently replaced — the CLI uses this so a
        rerun cannot clobber an interrupted run's receipt without
        ``--force``.
        """
        from repro.io import write_json_atomic
        from repro.obs.trace import _json_default

        if not force and os.path.exists(path):
            raise FileExistsError(
                f"manifest {path!r} already exists (from an interrupted run?); "
                "pass force=True (CLI: --force) to overwrite"
            )
        return write_json_atomic(
            self.to_dict(), path, sort_keys=False, default=_json_default
        )
