"""Structured JSONL trace export.

A :class:`TraceWriter` is an append-only event sink: one JSON object
per line, each stamped with the wall-clock time the writer was opened
plus a monotonic ``t`` offset (``perf_counter`` seconds since open), so
traces line up with the recorder's timer spans. Events are flushed per
line — a crashed run keeps every event it emitted.

The writer accepts anything :func:`json.dumps` handles plus numpy
scalars (converted through ``.item()``); everything else falls back to
``str``, so an event can never kill the run it is observing.
"""

from __future__ import annotations

import json
import os
import time
from time import perf_counter
from typing import Any, Dict, IO, Optional, Union

__all__ = ["TraceWriter"]


def _json_default(value: Any) -> Any:
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class TraceWriter:
    """Append structured events to a JSONL file (or any text stream)."""

    def __init__(self, target: Union[str, "IO[str]"], *, force: bool = False) -> None:
        if isinstance(target, str):
            if not force and os.path.exists(target):
                raise FileExistsError(
                    f"trace file {target!r} already exists (from an interrupted "
                    "run?); pass force=True (CLI: --force) to overwrite"
                )
            self.path: Optional[str] = target
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self.path = getattr(target, "name", None)
            self._handle = target
            self._owns_handle = False
        self._t0 = perf_counter()
        self.opened_at = time.time()
        self.records = 0
        self.write("trace.open", wall_time=self.opened_at)

    def write(self, event: str, **fields: Any) -> None:
        """Append one event record; silently drops after :meth:`close`."""
        if self._handle is None:
            return
        record: Dict[str, Any] = {"t": round(perf_counter() - self._t0, 6), "event": event}
        record.update(fields)
        self._handle.write(json.dumps(record, default=_json_default) + "\n")
        self._handle.flush()
        self.records += 1

    def close(self) -> None:
        if self._handle is None:
            return
        self.write("trace.close", records=self.records)
        if self._owns_handle:
            self._handle.close()
        self._handle = None  # type: ignore[assignment]

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
