"""The ``repro.*`` stdlib logging hierarchy.

The library logs through one logger tree rooted at ``"repro"``, with a
``NullHandler`` attached at import so an un-configured application sees
nothing (the stdlib convention for libraries). Applications configure
it like any stdlib logger::

    import logging
    logging.getLogger("repro").setLevel(logging.INFO)
    logging.basicConfig()

or use :func:`configure_logging`, which maps the CLI's ``-v``/``-q``
verbosity counts onto levels and installs one stream handler (replacing
any handler it installed before, so repeated calls don't duplicate
output). Log calls live at run *boundaries* — cell dispatch, pool
degradations, trace/manifest writes — never inside per-step loops, so
logging costs nothing on the hot paths even when enabled.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Optional

__all__ = ["get_logger", "configure_logging"]

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())

#: Marker attribute identifying the handler configure_logging installed.
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro`` root logger, or the ``repro.<name>`` child."""
    return _ROOT.getChild(name) if name else _ROOT


def configure_logging(verbosity: int = 0, *, stream: Optional[Any] = None) -> logging.Logger:
    """Wire the ``repro.*`` tree to a stream at a verbosity level.

    ``verbosity`` is the CLI convention: ``-1`` (``-q``) shows errors
    only, ``0`` warnings, ``1`` (``-v``) info, ``2+`` (``-vv``) debug.
    Returns the root logger.
    """
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    for handler in list(_ROOT.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            _ROOT.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s %(levelname)s: %(message)s"))
    setattr(handler, _HANDLER_TAG, True)
    _ROOT.addHandler(handler)
    _ROOT.setLevel(level)
    return _ROOT
