"""Human-readable summary of what a recorder collected."""

from __future__ import annotations

from typing import Optional

from repro.obs.recorder import MetricsRecorder, Recorder, get_recorder
from repro.util.tables import Table

__all__ = ["report"]


def report(recorder: Optional[Recorder] = None) -> Table:
    """Render a recorder's counters, timers and gauges as one table.

    With no argument, reports on the currently installed recorder; a
    :class:`~repro.obs.recorder.NullRecorder` (or anything without
    collected state) yields an empty table rather than an error.
    """
    recorder = recorder if recorder is not None else get_recorder()
    table = Table("observability summary", ["metric", "kind", "value"])
    if not isinstance(recorder, MetricsRecorder):
        return table
    snapshot = recorder.snapshot()
    for name in sorted(snapshot["counters"]):
        table.add_row(name, "counter", snapshot["counters"][name])
    for name in sorted(snapshot["timers"]):
        timing = snapshot["timers"][name]
        table.add_row(
            name, "timer", f"{timing['seconds']:.4f}s over {timing['count']} span(s)"
        )
    for name in sorted(snapshot["gauges"]):
        table.add_row(name, "gauge", snapshot["gauges"][name])
    if snapshot["events"]:
        table.add_row("events", "trace", snapshot["events"])
    return table
