"""Fee processes: per-block transaction fees over time.

Fees are the second lever of a coin's weight and the instrument of the
"whale transaction" manipulation (Liao & Katz 2017, cited by the paper):
an interested party can temporarily raise a coin's effective reward by
stuffing high-fee transactions into its mempool. A
:class:`WhaleFeeSchedule` overlays such deliberate boosts on an organic
fee process.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.util.rng import RngLike, make_rng


class FeeProcess(abc.ABC):
    """Per-block fee level (coin units) sampled on a time grid (hours)."""

    @abc.abstractmethod
    def sample(self, times_h: Sequence[float], seed: RngLike = None) -> np.ndarray:
        """Fee-per-block at each time (non-negative array)."""


@dataclass(frozen=True)
class ConstantFees(FeeProcess):
    """A flat organic fee level."""

    per_block: float

    def __post_init__(self) -> None:
        if self.per_block < 0:
            raise SimulationError(f"fees must be non-negative, got {self.per_block}")

    def sample(self, times_h, seed=None):
        return np.full(len(times_h), self.per_block, dtype=float)


@dataclass(frozen=True)
class MeanRevertingFees(FeeProcess):
    """Ornstein–Uhlenbeck-style fees: congestion comes and goes."""

    mean_per_block: float
    reversion_per_h: float = 0.1
    volatility: float = 0.05

    def __post_init__(self) -> None:
        if self.mean_per_block < 0:
            raise SimulationError("mean fee level must be non-negative")
        if self.reversion_per_h <= 0:
            raise SimulationError("reversion speed must be positive")

    def sample(self, times_h, seed=None):
        rng = make_rng(seed)
        times = np.asarray(times_h, dtype=float)
        if len(times) == 0:
            return np.array([])
        level = self.mean_per_block
        path = np.empty(len(times))
        previous_t = times[0]
        for index, t in enumerate(times):
            dt = max(t - previous_t, 0.0)
            level += self.reversion_per_h * (self.mean_per_block - level) * dt
            level += self.volatility * np.sqrt(dt) * rng.normal()
            level = max(level, 0.0)
            path[index] = level
            previous_t = t
        return path


@dataclass(frozen=True)
class WhaleBoost:
    """A deliberate fee injection: extra fees per block over a window."""

    start_h: float
    end_h: float
    extra_per_block: float

    def __post_init__(self) -> None:
        if self.end_h <= self.start_h:
            raise SimulationError("whale boost window must have positive length")
        if self.extra_per_block <= 0:
            raise SimulationError("whale boost must add positive fees")

    def total_spend(self, blocks_per_hour: float) -> float:
        """Coin units the whale spends to sustain this boost."""
        return self.extra_per_block * blocks_per_hour * (self.end_h - self.start_h)


@dataclass(frozen=True)
class WhaleFeeSchedule(FeeProcess):
    """Organic fees plus scheduled whale injections."""

    organic: FeeProcess
    boosts: Tuple[WhaleBoost, ...] = ()

    def sample(self, times_h, seed=None):
        times = np.asarray(times_h, dtype=float)
        path = self.organic.sample(times, seed=seed).copy()
        for boost in self.boosts:
            active = (times >= boost.start_h) & (times < boost.end_h)
            path[active] += boost.extra_per_block
        return path
