"""Miner populations: realistic hashpower distributions.

The game's predictions depend on the *shape* of the power distribution
(a handful of big pools vs. a long tail), so experiments draw
populations from named profiles rather than ad-hoc uniforms. Powers are
produced as exact fractions with per-index jitter, so strictness
(required by the Section 5 mechanism) and genericity hold by
construction.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

import numpy as np

from repro.core.miner import Miner, make_miners, sorted_by_power
from repro.exceptions import SimulationError
from repro.util.rng import RngLike, make_rng

_GRID = 10**9

#: Approximate November-2017 SHA256d pool shares (fraction of network),
#: from public pool statistics: a few large pools plus a tail.
POOL_PROFILE_2017: Sequence[float] = (
    0.185, 0.135, 0.115, 0.095, 0.07, 0.06, 0.05, 0.04, 0.035, 0.03,
    0.025, 0.02, 0.02, 0.015, 0.015, 0.01, 0.01, 0.01, 0.01, 0.05,
)


def _snap(values: np.ndarray) -> List[Fraction]:
    """Snap floats to a fine rational grid with unique per-index jitter."""
    count = len(values)
    snapped = []
    for index, value in enumerate(values):
        numerator = int(round(float(value) * _GRID)) * (count + 1) + (index + 1)
        snapped.append(Fraction(numerator, _GRID * (count + 1)))
    return snapped


def uniform_population(
    n: int, *, low: float = 1.0, high: float = 100.0, seed: RngLike = None
) -> List[Miner]:
    """*n* miners with powers uniform on [low, high], strictly distinct."""
    if n < 1:
        raise SimulationError(f"population size must be ≥ 1, got {n}")
    if not 0 < low < high:
        raise SimulationError(f"need 0 < low < high, got {low}, {high}")
    rng = make_rng(seed)
    powers = _snap(rng.uniform(low, high, n))
    return list(sorted_by_power(make_miners(powers)))


def pareto_population(
    n: int, *, scale: float = 1.0, alpha: float = 1.2, seed: RngLike = None
) -> List[Miner]:
    """Heavy-tailed powers: few whales, long tail of small miners."""
    if n < 1:
        raise SimulationError(f"population size must be ≥ 1, got {n}")
    if scale <= 0 or alpha <= 0:
        raise SimulationError("scale and alpha must be positive")
    rng = make_rng(seed)
    powers = _snap(scale * (1.0 + rng.pareto(alpha, n)))
    return list(sorted_by_power(make_miners(powers)))


def pool_population(
    total_power: float = 1000.0,
    profile: Sequence[float] = POOL_PROFILE_2017,
    *,
    tail_miners: int = 0,
    seed: RngLike = None,
) -> List[Miner]:
    """A 2017-like pool landscape, optionally with a small-miner tail.

    The last profile entry is the 'other' share; when ``tail_miners > 0``
    it is split into that many small independent miners.
    """
    if total_power <= 0:
        raise SimulationError("total power must be positive")
    if abs(sum(profile) - 1.0) > 1e-6:
        raise SimulationError("pool profile shares must sum to 1")
    rng = make_rng(seed)
    shares = list(profile)
    values: List[float] = []
    if tail_miners > 0:
        other = shares.pop()
        values.extend(total_power * share for share in shares)
        splits = rng.dirichlet(np.ones(tail_miners)) * total_power * other
        values.extend(float(s) for s in splits)
    else:
        values.extend(total_power * share for share in shares)
    return list(sorted_by_power(make_miners(_snap(np.asarray(values)))))
