"""Exchange-rate processes: the fiat price paths that drive coin weights.

The paper's Figure 1 shows the November 2017 episode where a swing in
the BTC/BCH exchange rate pulled hashrate from Bitcoin to Bitcoin Cash.
Real tick data is proprietary-ish and unnecessary: the game reacts only
to the *weight ratio* between coins, so a jump-diffusion path with the
right swing magnitude exercises exactly the same code path
(substitution documented in DESIGN.md §4).

All processes are deterministic functions of (seed, time grid), so
experiments are reproducible.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.util.rng import RngLike, make_rng


class RateProcess(abc.ABC):
    """A fiat exchange-rate path sampled on a time grid (hours)."""

    @abc.abstractmethod
    def sample(self, times_h: Sequence[float], seed: RngLike = None) -> np.ndarray:
        """Rates at each time in *times_h* (strictly positive array)."""


@dataclass(frozen=True)
class ConstantRate(RateProcess):
    """A flat exchange rate; the control case."""

    level: float

    def __post_init__(self) -> None:
        if self.level <= 0:
            raise SimulationError(f"rate level must be positive, got {self.level}")

    def sample(self, times_h, seed=None):
        return np.full(len(times_h), self.level, dtype=float)


@dataclass(frozen=True)
class GeometricBrownianRate(RateProcess):
    """Geometric Brownian motion: ordinary day-to-day price wiggle."""

    initial: float
    drift_per_h: float = 0.0
    volatility_per_sqrt_h: float = 0.01

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise SimulationError(f"initial rate must be positive, got {self.initial}")
        if self.volatility_per_sqrt_h < 0:
            raise SimulationError("volatility must be non-negative")

    def sample(self, times_h, seed=None):
        rng = make_rng(seed)
        times = np.asarray(times_h, dtype=float)
        if len(times) == 0:
            return np.array([])
        if np.any(np.diff(times) < 0):
            raise SimulationError("time grid must be non-decreasing")
        steps = np.diff(times, prepend=times[0])
        shocks = rng.normal(0.0, 1.0, len(times)) * np.sqrt(np.maximum(steps, 0.0))
        log_path = np.cumsum(
            (self.drift_per_h - 0.5 * self.volatility_per_sqrt_h**2) * steps
            + self.volatility_per_sqrt_h * shocks
        )
        return self.initial * np.exp(log_path - log_path[0])


@dataclass(frozen=True)
class JumpEvent:
    """A deterministic multiplicative jump at a point in time.

    ``half_life_h`` lets the jump decay back toward the pre-jump level
    (0 means permanent), reproducing spike-and-revert episodes.
    """

    at_h: float
    factor: float
    half_life_h: float = 0.0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise SimulationError(f"jump factor must be positive, got {self.factor}")
        if self.half_life_h < 0:
            raise SimulationError("half life must be non-negative")


@dataclass(frozen=True)
class JumpDiffusionRate(RateProcess):
    """GBM plus scheduled jumps — the Figure 1 scenario generator."""

    base: GeometricBrownianRate
    jumps: Tuple[JumpEvent, ...] = ()

    def sample(self, times_h, seed=None):
        times = np.asarray(times_h, dtype=float)
        path = self.base.sample(times, seed=seed)
        for jump in self.jumps:
            multiplier = np.ones_like(path)
            after = times >= jump.at_h
            if jump.half_life_h > 0:
                decay = 0.5 ** ((times[after] - jump.at_h) / jump.half_life_h)
                multiplier[after] = 1.0 + (jump.factor - 1.0) * decay
            else:
                multiplier[after] = jump.factor
            path = path * multiplier
        return path


def btc_bch_november_2017(
    *,
    horizon_h: float = 240.0,
    resolution_h: float = 1.0,
) -> Tuple[np.ndarray, JumpDiffusionRate, JumpDiffusionRate]:
    """The Figure 1 scenario: BTC flat-ish, BCH spikes ~3× and reverts.

    Returns ``(time grid, BTC rate process, BCH rate process)``.
    Calibration: around November 12, 2017 the BCH/USD price tripled
    within days while BTC dipped, flipping relative mining
    profitability; the spike decayed over roughly a week. Magnitudes
    here match that shape, which is all the game dynamics consume.
    """
    if horizon_h <= 0 or resolution_h <= 0:
        raise SimulationError("horizon and resolution must be positive")
    times = np.arange(0.0, horizon_h + 1e-9, resolution_h)
    btc = JumpDiffusionRate(
        base=GeometricBrownianRate(initial=6500.0, volatility_per_sqrt_h=0.004),
        jumps=(JumpEvent(at_h=96.0, factor=0.85, half_life_h=72.0),),
    )
    bch = JumpDiffusionRate(
        base=GeometricBrownianRate(initial=620.0, volatility_per_sqrt_h=0.008),
        jumps=(JumpEvent(at_h=96.0, factor=3.0, half_life_h=48.0),),
    )
    return times, btc, bch
