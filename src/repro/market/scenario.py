"""Market scenarios: coins + rate/fee processes + a miner population.

A scenario is the bridge between the market substrate and the game
model: it materializes a :class:`WeightSeries` and can produce, for any
time-grid index, the exact game ``G_{Π,C,F(t)}`` the paper analyzes.
Replaying learning across the game sequence is how E1 reproduces
Figure 1's hashrate migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.coin import Coin, make_coins
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.exceptions import SimulationError
from repro.learning.engine import LearningEngine
from repro.market.coins import CoinSpec, bitcoin_cash_spec, bitcoin_spec
from repro.market.exchange_rates import RateProcess, btc_bch_november_2017
from repro.market.fees import ConstantFees, FeeProcess
from repro.market.population import pool_population, uniform_population
from repro.market.weights import WeightSeries, build_weight_series
from repro.util.rng import RngLike, make_rng, spawn_rngs


@dataclass
class MarketScenario:
    """A complete multi-coin market over a time horizon."""

    specs: Sequence[CoinSpec]
    rate_processes: Sequence[RateProcess]
    fee_processes: Sequence[FeeProcess]
    miners: Sequence[Miner]
    times_h: np.ndarray
    seed: Optional[int] = None

    _weights: Optional[WeightSeries] = field(default=None, repr=False)
    _coins: Optional[Tuple[Coin, ...]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not (len(self.specs) == len(self.rate_processes) == len(self.fee_processes)):
            raise SimulationError(
                "specs, rate processes and fee processes must align one-to-one"
            )
        if len(self.specs) < 1:
            raise SimulationError("a scenario needs at least one coin")
        if len(self.miners) < 1:
            raise SimulationError("a scenario needs at least one miner")
        self._coins = make_coins(spec.name for spec in self.specs)

    @property
    def coins(self) -> Tuple[Coin, ...]:
        assert self._coins is not None
        return self._coins

    def weight_series(self) -> WeightSeries:
        """Materialize (and cache) the per-coin weight paths."""
        if self._weights is None:
            rngs = spawn_rngs(self.seed, 2 * len(self.specs))
            components = []
            for index, spec in enumerate(self.specs):
                rates = self.rate_processes[index].sample(self.times_h, seed=rngs[2 * index])
                fees = self.fee_processes[index].sample(self.times_h, seed=rngs[2 * index + 1])
                components.append((spec, rates, fees))
            self._weights = build_weight_series(self.times_h, components)
        return self._weights

    def game_at(self, index: int) -> Game:
        """The exact game ``G_{Π,C,F(t_index)}``."""
        weights = self.weight_series()
        rewards = weights.reward_function(index, self.coins)
        return Game(tuple(self.miners), self.coins, rewards)

    def games(self) -> Iterator[Game]:
        for index in range(len(self.times_h)):
            yield self.game_at(index)

    def replay(
        self,
        *,
        engine: Optional[LearningEngine] = None,
        seed: RngLike = None,
        initial: Optional[Configuration] = None,
    ) -> "ScenarioReplay":
        """Run better-response learning through the whole weight series.

        At each time step the miners face the game with the current
        weights, starting from where the previous step left them, and
        learning runs to convergence (weights move on a slower time
        scale than profit-switching decisions — the Figure 1 episode
        played out over days while switching takes minutes).
        """
        rng = make_rng(seed)
        if engine is None:
            engine = LearningEngine(record_configurations=False)
        weights = self.weight_series()

        if initial is None:
            # Everyone starts on the first coin (BTC in the Figure 1
            # scenario) and the first tick's learning spreads them out.
            config = Configuration.uniform(tuple(self.miners), self.coins[0])
        else:
            config = initial
        configurations: List[Configuration] = []
        steps: List[int] = []
        for index in range(len(weights)):
            game = self.game_at(index)
            trajectory = engine.run(game, config, seed=rng)
            config = trajectory.final
            configurations.append(config)
            steps.append(trajectory.length)
        return ScenarioReplay(
            scenario=self,
            configurations=configurations,
            steps_per_tick=steps,
        )


@dataclass
class ScenarioReplay:
    """The equilibrium path of a scenario replay, with summary accessors."""

    scenario: MarketScenario
    configurations: List[Configuration]
    steps_per_tick: List[int]

    def hashrate_share(self, coin_name: str) -> np.ndarray:
        """Fraction of total power on *coin_name* at each time step.

        This is the quantity Figure 1(b) plots (hashrate tracks miner
        count/power on each chain).
        """
        coin = next(c for c in self.scenario.coins if c.name == coin_name)
        total = float(sum(miner.power for miner in self.scenario.miners))
        shares = np.empty(len(self.configurations))
        for index, config in enumerate(self.configurations):
            on_coin = sum(
                float(miner.power) for miner in config.miners_on(coin)
            )
            shares[index] = on_coin / total
        return shares

    def total_switches(self) -> int:
        return int(sum(self.steps_per_tick))


def multi_coin_scenario(
    n_coins: int,
    *,
    horizon_h: float = 120.0,
    resolution_h: float = 4.0,
    n_miners: int = 30,
    base_rate: float = 1000.0,
    volatility: float = 0.01,
    seed: int = 0,
) -> MarketScenario:
    """A generic market of *n_coins* GBM-priced coins.

    Coins share Bitcoin's block economics but differ in price level
    (geometric spacing, so reward weights span about one order of
    magnitude) and each follows its own GBM path. Useful for experiments
    beyond the two-coin Figure 1 episode.
    """
    from repro.market.exchange_rates import GeometricBrownianRate

    if n_coins < 1:
        raise SimulationError("need at least one coin")
    times = np.arange(0.0, horizon_h + 1e-9, resolution_h)
    specs = []
    rates = []
    fees = []
    for index in range(n_coins):
        specs.append(
            CoinSpec(
                name=f"COIN{index + 1}",
                block_interval_s=600.0,
                block_subsidy=12.5,
                fees_per_block=0.5,
            )
        )
        level = base_rate * (0.6 ** index)
        rates.append(
            GeometricBrownianRate(initial=level, volatility_per_sqrt_h=volatility)
        )
        fees.append(ConstantFees(0.5))
    miners = uniform_population(n_miners, seed=seed)
    return MarketScenario(
        specs=tuple(specs),
        rate_processes=tuple(rates),
        fee_processes=tuple(fees),
        miners=miners,
        times_h=times,
        seed=seed,
    )


def btc_bch_scenario(
    *,
    horizon_h: float = 240.0,
    resolution_h: float = 2.0,
    total_power: float = 1000.0,
    tail_miners: int = 30,
    seed: int = 2017,
) -> MarketScenario:
    """The Figure 1 scenario: BTC vs BCH around November 12, 2017."""
    times, btc_rate, bch_rate = btc_bch_november_2017(
        horizon_h=horizon_h, resolution_h=resolution_h
    )
    miners = pool_population(
        total_power=total_power, tail_miners=tail_miners, seed=seed
    )
    return MarketScenario(
        specs=(bitcoin_spec(), bitcoin_cash_spec()),
        rate_processes=(btc_rate, bch_rate),
        fee_processes=(ConstantFees(2.0), ConstantFees(0.3)),
        miners=miners,
        times_h=times,
        seed=seed,
    )
