"""Coin weights: from protocol + market state to the game's ``F(c)``.

The paper abstracts each coin into a single weight that it divides
among its miners. This module computes that weight from first
principles:

    ``weight(c, t) = (subsidy + fees(t)) · rate(t) / block_interval``

i.e. fiat value minted per unit time. A weight *series* over a time
grid turns a market scenario into a sequence of reward functions, and
therefore a sequence of games — which is how the Figure 1 experiment
replays a market episode through the game model.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.coin import Coin, RewardFunction
from repro.exceptions import SimulationError
from repro.market.coins import CoinSpec


@dataclass(frozen=True)
class WeightSeries:
    """Per-coin weight paths on a shared time grid (hours)."""

    times_h: np.ndarray
    #: coin name → weight path (fiat/hour), same length as times_h.
    weights: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        for name, path in self.weights.items():
            if len(path) != len(self.times_h):
                raise SimulationError(
                    f"weight path of {name!r} has {len(path)} points but the "
                    f"time grid has {len(self.times_h)}"
                )
            if np.any(path <= 0):
                raise SimulationError(f"weights of {name!r} must stay positive")

    def at(self, index: int) -> Dict[str, float]:
        """The weight of every coin at time-grid position *index*."""
        return {name: float(path[index]) for name, path in self.weights.items()}

    def reward_function(self, index: int, coins: Sequence[Coin]) -> RewardFunction:
        """An exact reward function snapshot for the game layer.

        Floats are converted exactly (every float is a dyadic rational),
        so downstream stability checks remain tie-safe.
        """
        values = []
        for coin in coins:
            if coin.name not in self.weights:
                raise SimulationError(f"no weight path for coin {coin.name!r}")
            values.append(Fraction(float(self.weights[coin.name][index])))
        return RewardFunction.from_values(coins, values)

    def ratio(self, numerator: str, denominator: str) -> np.ndarray:
        """The weight ratio path between two coins (profitability ratio)."""
        return self.weights[numerator] / self.weights[denominator]

    def __len__(self) -> int:
        return len(self.times_h)


def weight_path(
    spec: CoinSpec,
    rates: np.ndarray,
    fees: np.ndarray,
) -> np.ndarray:
    """Fiat minted per hour for one coin along rate and fee paths."""
    if len(rates) != len(fees):
        raise SimulationError(
            f"rate path ({len(rates)}) and fee path ({len(fees)}) lengths differ"
        )
    return (spec.block_subsidy + fees) * rates * spec.blocks_per_hour


def build_weight_series(
    times_h: np.ndarray,
    components: Sequence[Tuple[CoinSpec, np.ndarray, np.ndarray]],
) -> WeightSeries:
    """Assemble a :class:`WeightSeries` from per-coin (spec, rates, fees)."""
    weights: Dict[str, np.ndarray] = {}
    for spec, rates, fees in components:
        if spec.name in weights:
            raise SimulationError(f"duplicate coin {spec.name!r} in weight series")
        weights[spec.name] = weight_path(spec, rates, fees)
    return WeightSeries(times_h=np.asarray(times_h, dtype=float), weights=weights)
