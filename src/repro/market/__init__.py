"""Market substrate: coin specs, price/fee processes, weights, populations."""

from repro.market.coins import CoinSpec, bitcoin_cash_spec, bitcoin_spec
from repro.market.exchange_rates import (
    ConstantRate,
    GeometricBrownianRate,
    JumpDiffusionRate,
    JumpEvent,
    RateProcess,
    btc_bch_november_2017,
)
from repro.market.fees import (
    ConstantFees,
    FeeProcess,
    MeanRevertingFees,
    WhaleBoost,
    WhaleFeeSchedule,
)
from repro.market.population import (
    POOL_PROFILE_2017,
    pareto_population,
    pool_population,
    uniform_population,
)
from repro.market.scenario import (
    MarketScenario,
    ScenarioReplay,
    btc_bch_scenario,
    multi_coin_scenario,
)
from repro.market.weights import WeightSeries, build_weight_series, weight_path

__all__ = [
    "CoinSpec",
    "bitcoin_cash_spec",
    "bitcoin_spec",
    "ConstantRate",
    "GeometricBrownianRate",
    "JumpDiffusionRate",
    "JumpEvent",
    "RateProcess",
    "btc_bch_november_2017",
    "ConstantFees",
    "FeeProcess",
    "MeanRevertingFees",
    "WhaleBoost",
    "WhaleFeeSchedule",
    "POOL_PROFILE_2017",
    "pareto_population",
    "pool_population",
    "uniform_population",
    "MarketScenario",
    "ScenarioReplay",
    "btc_bch_scenario",
    "multi_coin_scenario",
    "WeightSeries",
    "build_weight_series",
    "weight_path",
]
