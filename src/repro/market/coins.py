"""Coin specifications: the protocol-level economics of each currency.

A :class:`CoinSpec` captures what determines a coin's *weight* in the
paper's sense — "a coin's weight (or reward) depends on its transaction
rate, transaction fees, and its fiat exchange rate" (Section 1):

* the target block interval and per-block subsidy (protocol constants),
* a fee level per block (market-driven, see :mod:`repro.market.fees`),
* the fiat exchange rate (market-driven, see
  :mod:`repro.market.exchange_rates`).

The weight in fiat per unit time is
``(subsidy + fees) · rate / block_interval`` — computed by
:mod:`repro.market.weights`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class CoinSpec:
    """Protocol-level parameters of one proof-of-work coin."""

    name: str
    #: Target seconds between blocks (600 for Bitcoin and Bitcoin Cash).
    block_interval_s: float
    #: Block subsidy in coin units (12.5 BTC in November 2017).
    block_subsidy: float
    #: Average fees per block in coin units.
    fees_per_block: float = 0.0
    #: Label of the PoW algorithm; miners can only mine coins whose
    #: algorithm matches their hardware (the paper's "asymmetric case").
    algorithm: str = "sha256d"

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("coin spec needs a name")
        if self.block_interval_s <= 0:
            raise SimulationError(
                f"{self.name}: block interval must be positive, got {self.block_interval_s}"
            )
        if self.block_subsidy < 0 or self.fees_per_block < 0:
            raise SimulationError(f"{self.name}: subsidy and fees must be non-negative")
        if self.block_subsidy + self.fees_per_block <= 0:
            raise SimulationError(f"{self.name}: a coin must pay something per block")

    @property
    def coins_per_block(self) -> float:
        """Total coin units paid per block (subsidy + fees)."""
        return self.block_subsidy + self.fees_per_block

    @property
    def blocks_per_hour(self) -> float:
        return 3600.0 / self.block_interval_s


def bitcoin_spec(fees_per_block: float = 2.0) -> CoinSpec:
    """Bitcoin circa November 2017 (12.5 BTC subsidy, 10-minute blocks)."""
    return CoinSpec(
        name="BTC",
        block_interval_s=600.0,
        block_subsidy=12.5,
        fees_per_block=fees_per_block,
        algorithm="sha256d",
    )


def bitcoin_cash_spec(fees_per_block: float = 0.3) -> CoinSpec:
    """Bitcoin Cash circa November 2017 (same subsidy schedule as BTC)."""
    return CoinSpec(
        name="BCH",
        block_interval_s=600.0,
        block_subsidy=12.5,
        fees_per_block=fees_per_block,
        algorithm="sha256d",
    )
