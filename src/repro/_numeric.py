"""Numeric layer: exact and floating-point arithmetic for game payoffs.

The core game compares revenue-per-unit (RPU) values to decide whether a
move is a better-response step. Those comparisons must be *exact*:
Assumption 2 of the paper (generic game) rules out ties, and a float
rounding error that manufactures or hides a tie corrupts stability
checks, the ordinal potential, and the reward design invariants.

We therefore represent mining powers and rewards as
:class:`fractions.Fraction` inside the core game. Values enter the
library as ``int``, ``Fraction`` or ``float``; floats are converted via
``Fraction(float)`` which is exact (every float is a dyadic rational).

The large-scale simulators (``repro.chainsim``, ``repro.market``) work in
floats for speed; they convert at the boundary using the helpers here.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

Number = Union[int, float, Fraction]

#: Values below this are treated as "no power" when validating floats.
_MIN_POSITIVE = Fraction(0)


def to_fraction(value: Number, *, name: str = "value") -> Fraction:
    """Convert *value* to an exact :class:`Fraction`.

    Raises :class:`TypeError` for non-numeric inputs and
    :class:`ValueError` for NaN/infinite floats, naming the offending
    parameter for actionable error messages.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got bool {value!r}")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value:
            raise ValueError(f"{name} must not be NaN")
        if value in (float("inf"), float("-inf")):
            raise ValueError(f"{name} must be finite, got {value!r}")
        return Fraction(value)
    raise TypeError(f"{name} must be int, float or Fraction, got {type(value).__name__}")


def to_positive_fraction(value: Number, *, name: str = "value") -> Fraction:
    """Convert *value* to a Fraction and require it to be strictly positive."""
    frac = to_fraction(value, name=name)
    if frac <= _MIN_POSITIVE:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return frac


def as_float(value: Number) -> float:
    """Best-effort float view of a numeric value (for reporting only)."""
    return float(value)
