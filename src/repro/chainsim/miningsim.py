"""Event-driven mining simulation across multiple PoW chains.

This is the physical layer underneath the paper's one-line payoff
model. Miners sit on coins; blocks arrive as exponential races
(:mod:`repro.chainsim.pow`); difficulty rules react to migration
(:mod:`repro.chainsim.difficulty`); and at Poisson re-evaluation times
each miner compares its *expected fiat income rate* across coins and
takes a better-response switch if one exists.

The expected income rate of miner ``p`` on coin ``c`` is

    ``m_p / M_c · value_per_block(c) / current_interval(c)``

with ``current_interval = difficulty / M_c`` — so when difficulty has
caught up with migration this is exactly the paper's
``m_p · F(c)/M_c``, and between adjustments it captures the transient
over/under-rewarding that made the 2017 BTC/BCH oscillation violent.

Two uses in the experiment suite:

* E1 replays the Figure 1 episode at block granularity.
* The integration tests verify the substitution claim of DESIGN.md §4:
  long-run realized rewards converge to the game-model payoffs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chainsim.chain import Blockchain
from repro.chainsim.difficulty import DifficultyRule, StaticDifficulty
from repro.chainsim.pow import BlockLottery, calibrated_difficulty
from repro.exceptions import SimulationError
from repro.market.coins import CoinSpec
from repro.util.rng import RngLike, make_rng

#: Maps (time in hours, coin name) to the coin's fiat exchange rate.
RateFn = Callable[[float, str], float]


@dataclass(frozen=True)
class SimMiner:
    """A miner in the chain simulation (float power for speed)."""

    name: str
    power: float

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise SimulationError(f"miner {self.name!r} needs positive power")


@dataclass
class SwitchEvent:
    """A recorded coin switch by one miner."""

    time_h: float
    miner: str
    source: str
    target: str


@dataclass
class SimulationResult:
    """Everything the mining simulation measured."""

    chains: Dict[str, Blockchain]
    switches: List[SwitchEvent]
    #: Sample times and per-coin hashrate shares at those times.
    sample_times_h: np.ndarray
    hashrate_shares: Dict[str, np.ndarray]
    #: Fiat earned per miner (valued at the rate when each block landed).
    fiat_by_miner: Dict[str, float]
    final_assignment: Dict[str, str]

    def blocks_found(self, coin: str) -> int:
        return self.chains[coin].height


class MiningSimulation:
    """Multi-chain, event-driven PoW simulation with strategic switching.

    Parameters
    ----------
    specs:
        The coins being mined.
    miners:
        The miner population (float powers).
    rate_fn:
        Fiat exchange rate per coin over time; drives switching
        decisions and fiat accounting.
    reevaluation_rate_per_h:
        Each miner re-checks profitability at Poisson times with this
        rate (whattomine-style polling).
    switch_threshold:
        Relative income improvement required to switch (hysteresis; 0
        reproduces pure better response).
    """

    def __init__(
        self,
        specs: Sequence[CoinSpec],
        miners: Sequence[SimMiner],
        rate_fn: RateFn,
        *,
        difficulty_rules: Optional[Dict[str, DifficultyRule]] = None,
        reevaluation_rate_per_h: float = 2.0,
        switch_threshold: float = 0.0,
        seed: RngLike = None,
    ):
        if not specs:
            raise SimulationError("simulation needs at least one coin")
        if not miners:
            raise SimulationError("simulation needs at least one miner")
        names = [miner.name for miner in miners]
        if len(set(names)) != len(names):
            raise SimulationError("miner names must be unique")
        if reevaluation_rate_per_h <= 0:
            raise SimulationError("re-evaluation rate must be positive")
        if switch_threshold < 0:
            raise SimulationError("switch threshold must be non-negative")
        self.specs = {spec.name: spec for spec in specs}
        if len(self.specs) != len(specs):
            raise SimulationError("coin names must be unique")
        self.miners = {miner.name: miner for miner in miners}
        self.rate_fn = rate_fn
        self.reevaluation_rate_per_h = reevaluation_rate_per_h
        self.switch_threshold = switch_threshold
        self._rng = make_rng(seed)
        self._lottery = BlockLottery(seed=self._rng)
        self._difficulty_rules = difficulty_rules or {}

    # ------------------------------------------------------------------

    def run(
        self,
        horizon_h: float,
        *,
        initial_assignment: Optional[Dict[str, str]] = None,
        sample_resolution_h: float = 1.0,
    ) -> SimulationResult:
        """Simulate *horizon_h* hours of mining."""
        if horizon_h <= 0:
            raise SimulationError("horizon must be positive")
        assignment = self._initial_assignment(initial_assignment)
        chains = self._build_chains(assignment)

        switches: List[SwitchEvent] = []
        fiat: Dict[str, float] = {name: 0.0 for name in self.miners}

        sample_times = np.arange(0.0, horizon_h + 1e-9, sample_resolution_h)
        shares: Dict[str, List[float]] = {name: [] for name in self.specs}
        next_sample_index = 0

        # Event queue: (time, sequence, kind, payload). Block events are
        # re-drawn whenever the power on a coin changes (the exponential
        # race is memoryless, so re-drawing is distribution-preserving).
        now = 0.0
        epoch: Dict[str, int] = {name: 0 for name in self.specs}
        queue: List[Tuple[float, int, str, str, int]] = []
        sequence = 0

        def schedule_block(coin: str) -> None:
            nonlocal sequence
            draw = self._lottery.draw(self._powers_on(coin, assignment), chains[coin].difficulty)
            if draw is None:
                return
            sequence += 1
            heapq.heappush(
                queue, (now + draw.wait_h, sequence, "block", coin, epoch[coin])
            )

        def schedule_reevaluation(miner: str) -> None:
            nonlocal sequence
            wait = float(self._rng.exponential(1.0 / self.reevaluation_rate_per_h))
            sequence += 1
            heapq.heappush(queue, (now + wait, sequence, "reeval", miner, 0))

        for coin in self.specs:
            schedule_block(coin)
        for miner in self.miners:
            schedule_reevaluation(miner)

        while queue:
            time, _, kind, subject, event_epoch = heapq.heappop(queue)
            if time > horizon_h:
                break
            # Emit samples up to the event time.
            while (
                next_sample_index < len(sample_times)
                and sample_times[next_sample_index] <= time
            ):
                self._record_shares(shares, assignment)
                next_sample_index += 1
            now = time

            if kind == "block":
                coin = subject
                if event_epoch != epoch[coin]:
                    continue  # stale draw from before a power change
                powers = self._powers_on(coin, assignment)
                if not powers:
                    continue
                draw_names = list(powers)
                values = np.array([powers[n] for n in draw_names])
                winner = draw_names[int(self._rng.choice(len(draw_names), p=values / values.sum()))]
                block = chains[coin].append(now, winner)
                fiat[winner] += block.reward_coins * self.rate_fn(now, coin)
                epoch[coin] += 1
                schedule_block(coin)
            else:
                miner = subject
                moved = self._maybe_switch(miner, assignment, chains, now, switches)
                if moved:
                    for coin in moved:
                        epoch[coin] += 1
                        schedule_block(coin)
                schedule_reevaluation(miner)

        while next_sample_index < len(sample_times):
            self._record_shares(shares, assignment)
            next_sample_index += 1

        return SimulationResult(
            chains=chains,
            switches=switches,
            sample_times_h=sample_times,
            hashrate_shares={name: np.array(path) for name, path in shares.items()},
            fiat_by_miner=fiat,
            final_assignment=dict(assignment),
        )

    # ------------------------------------------------------------------

    def _initial_assignment(
        self, initial: Optional[Dict[str, str]]
    ) -> Dict[str, str]:
        first_coin = next(iter(self.specs))
        if initial is None:
            return {name: first_coin for name in self.miners}
        assignment = dict(initial)
        for name in self.miners:
            if name not in assignment:
                raise SimulationError(f"initial assignment misses miner {name!r}")
            if assignment[name] not in self.specs:
                raise SimulationError(
                    f"initial assignment puts {name!r} on unknown coin "
                    f"{assignment[name]!r}"
                )
        return assignment

    def _build_chains(self, assignment: Dict[str, str]) -> Dict[str, Blockchain]:
        chains: Dict[str, Blockchain] = {}
        total_power = sum(miner.power for miner in self.miners.values())
        for name, spec in self.specs.items():
            on_coin = sum(
                self.miners[m].power for m, c in assignment.items() if c == name
            )
            # Calibrate so the *initial* occupants hit the target
            # interval; an empty coin is calibrated to 10% of the
            # network (a plausible pre-history).
            basis = on_coin if on_coin > 0 else 0.1 * total_power
            difficulty = calibrated_difficulty(basis, spec.block_interval_s / 3600.0)
            rule = self._difficulty_rules.get(name, StaticDifficulty())
            chains[name] = Blockchain(spec=spec, difficulty=difficulty, rule=rule)
        return chains

    def _powers_on(self, coin: str, assignment: Dict[str, str]) -> Dict[str, float]:
        return {
            name: self.miners[name].power
            for name, chosen in assignment.items()
            if chosen == coin
        }

    def _income_rate(
        self,
        miner: SimMiner,
        coin: str,
        assignment: Dict[str, str],
        chains: Dict[str, Blockchain],
        now: float,
        *,
        joining: bool,
    ) -> float:
        """Expected fiat/hour for *miner* on *coin* (after joining it)."""
        power_on = sum(self._powers_on(coin, assignment).values())
        if joining:
            power_on += miner.power
        if power_on <= 0:
            return 0.0
        blocks_per_h = power_on / chains[coin].difficulty
        value_per_block = self.specs[coin].coins_per_block * self.rate_fn(now, coin)
        return (miner.power / power_on) * blocks_per_h * value_per_block

    def _maybe_switch(
        self,
        miner_name: str,
        assignment: Dict[str, str],
        chains: Dict[str, Blockchain],
        now: float,
        switches: List[SwitchEvent],
    ) -> Optional[Tuple[str, str]]:
        """Apply one better-response switch if profitable; return affected coins."""
        miner = self.miners[miner_name]
        current = assignment[miner_name]
        current_income = self._income_rate(
            miner, current, assignment, chains, now, joining=False
        )
        best_coin, best_income = current, current_income
        for coin in self.specs:
            if coin == current:
                continue
            income = self._income_rate(miner, coin, assignment, chains, now, joining=True)
            if income > best_income:
                best_coin, best_income = coin, income
        if best_coin == current:
            return None
        if current_income > 0 and (best_income - current_income) < self.switch_threshold * current_income:
            return None
        assignment[miner_name] = best_coin
        switches.append(
            SwitchEvent(time_h=now, miner=miner_name, source=current, target=best_coin)
        )
        return (current, best_coin)

    def _record_shares(
        self, shares: Dict[str, List[float]], assignment: Dict[str, str]
    ) -> None:
        total = sum(miner.power for miner in self.miners.values())
        for coin in self.specs:
            on_coin = sum(self._powers_on(coin, assignment).values())
            shares[coin].append(on_coin / total)
