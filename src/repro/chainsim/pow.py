"""Proof-of-work block lottery.

Block discovery on a PoW chain is memoryless: with total hashpower
``M`` against difficulty ``D``, the wait to the next block is
exponential with rate ``M / D`` (in blocks per hour when ``D`` is
calibrated as hashpower-hours per block), and the finder is each miner
with probability proportional to its power. This is the physical
process whose *expectation* is the paper's payoff
``u_p = m_p · F(c) / M_c`` — the chain simulator lets experiments
measure how fast realized rewards concentrate around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.util.rng import RngLike, make_rng


@dataclass(frozen=True)
class LotteryDraw:
    """One block event: when it was found and by whom."""

    wait_h: float
    winner: str


class BlockLottery:
    """Samples block arrival times and winners for one coin."""

    def __init__(self, seed: RngLike = None):
        self._rng = make_rng(seed)

    def draw(
        self,
        powers: Dict[str, float],
        difficulty: float,
    ) -> Optional[LotteryDraw]:
        """Sample the next block given per-miner powers and difficulty.

        Returns ``None`` when nobody mines the coin (no block will ever
        be found). ``difficulty`` is hashpower-hours per block: the
        expected wait is ``difficulty / Σ powers``.
        """
        if difficulty <= 0:
            raise SimulationError(f"difficulty must be positive, got {difficulty}")
        if any(power < 0 for power in powers.values()):
            raise SimulationError("mining powers must be non-negative")
        names = [name for name, power in powers.items() if power > 0]
        if not names:
            return None
        values = np.array([powers[name] for name in names], dtype=float)
        total = values.sum()
        wait = float(self._rng.exponential(difficulty / total))
        winner = names[int(self._rng.choice(len(names), p=values / total))]
        return LotteryDraw(wait_h=wait, winner=winner)

    def expected_wait_h(self, total_power: float, difficulty: float) -> float:
        """Mean block interval for the given hashpower and difficulty."""
        if total_power <= 0:
            raise SimulationError("total power must be positive")
        return difficulty / total_power


def calibrated_difficulty(total_power: float, target_interval_h: float) -> float:
    """The difficulty at which *total_power* hits the target interval."""
    if total_power <= 0 or target_interval_h <= 0:
        raise SimulationError("power and target interval must be positive")
    return total_power * target_interval_h
