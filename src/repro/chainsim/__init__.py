"""PoW chain substrate: block lottery, difficulty rules, event-driven sim."""

from repro.chainsim.chain import Block, Blockchain
from repro.chainsim.difficulty import (
    BitcoinRetarget,
    ComposedRule,
    DifficultyRule,
    EmergencyAdjustment,
    StaticDifficulty,
    bch_2017_rule,
)
from repro.chainsim.miningsim import (
    MiningSimulation,
    SimMiner,
    SimulationResult,
    SwitchEvent,
)
from repro.chainsim.pow import BlockLottery, LotteryDraw, calibrated_difficulty

__all__ = [
    "Block",
    "Blockchain",
    "BitcoinRetarget",
    "ComposedRule",
    "DifficultyRule",
    "EmergencyAdjustment",
    "StaticDifficulty",
    "bch_2017_rule",
    "MiningSimulation",
    "SimMiner",
    "SimulationResult",
    "SwitchEvent",
    "BlockLottery",
    "LotteryDraw",
    "calibrated_difficulty",
]
