"""Difficulty adjustment rules.

Difficulty couples hashrate migration back into profitability: when
miners leave a coin its blocks slow down, and until the rule adjusts,
per-block rewards are spread over fewer blocks per hour — which is why
the November 2017 BTC↔BCH oscillation (Figure 1) was so violent. Two
rules from that era are implemented:

* :class:`BitcoinRetarget` — every ``window`` blocks, rescale so the
  window would have taken exactly ``window · target``, clamped to 4×.
* :class:`EmergencyAdjustment` — Bitcoin Cash's 2017 EDA: if the last
  few blocks were much too slow, cut difficulty by 20% immediately.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SimulationError


class DifficultyRule(abc.ABC):
    """Given recent block timestamps, produce the next difficulty."""

    @abc.abstractmethod
    def adjust(
        self,
        timestamps_h: Sequence[float],
        difficulty: float,
        target_interval_h: float,
    ) -> float:
        """New difficulty after the latest block.

        ``timestamps_h`` are the chain's block times in hours, oldest
        first, including the just-found block.
        """


@dataclass(frozen=True)
class StaticDifficulty(DifficultyRule):
    """No adjustment — the control case for short horizons."""

    def adjust(self, timestamps_h, difficulty, target_interval_h):
        return difficulty


@dataclass(frozen=True)
class BitcoinRetarget(DifficultyRule):
    """Bitcoin's periodic retarget (window shrunk for simulation speed)."""

    window: int = 144
    clamp: float = 4.0

    def __post_init__(self) -> None:
        if self.window < 2:
            raise SimulationError(f"retarget window must be ≥ 2, got {self.window}")
        if self.clamp <= 1:
            raise SimulationError(f"clamp must exceed 1, got {self.clamp}")

    def adjust(self, timestamps_h, difficulty, target_interval_h):
        height = len(timestamps_h)
        if height < self.window + 1 or (height - 1) % self.window != 0:
            return difficulty
        elapsed = timestamps_h[-1] - timestamps_h[-1 - self.window]
        expected = self.window * target_interval_h
        if elapsed <= 0:
            return difficulty * self.clamp
        factor = expected / elapsed
        factor = min(max(factor, 1.0 / self.clamp), self.clamp)
        return difficulty * factor


@dataclass(frozen=True)
class EmergencyAdjustment(DifficultyRule):
    """BCH's 2017 EDA, simplified: too-slow recent blocks ⇒ −20%.

    If the last ``lookback`` blocks took more than ``trigger_factor``
    times their target duration, difficulty drops 20%. Composed with a
    base rule via :class:`ComposedRule`.
    """

    lookback: int = 6
    trigger_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.lookback < 1:
            raise SimulationError(f"lookback must be ≥ 1, got {self.lookback}")
        if self.trigger_factor <= 1:
            raise SimulationError("trigger factor must exceed 1")

    def adjust(self, timestamps_h, difficulty, target_interval_h):
        if len(timestamps_h) < self.lookback + 1:
            return difficulty
        elapsed = timestamps_h[-1] - timestamps_h[-1 - self.lookback]
        if elapsed > self.trigger_factor * self.lookback * target_interval_h:
            return difficulty * 0.8
        return difficulty


@dataclass(frozen=True)
class ComposedRule(DifficultyRule):
    """Apply several rules in sequence (e.g. retarget + EDA)."""

    rules: Sequence[DifficultyRule]

    def adjust(self, timestamps_h, difficulty, target_interval_h):
        for rule in self.rules:
            difficulty = rule.adjust(timestamps_h, difficulty, target_interval_h)
        return difficulty


def bch_2017_rule() -> DifficultyRule:
    """The rule set BCH ran during the Figure 1 episode."""
    return ComposedRule((BitcoinRetarget(window=144), EmergencyAdjustment()))
