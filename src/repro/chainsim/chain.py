"""Blockchain bookkeeping: blocks, per-chain state, reward tallies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chainsim.difficulty import DifficultyRule, StaticDifficulty
from repro.exceptions import SimulationError
from repro.market.coins import CoinSpec


@dataclass(frozen=True)
class Block:
    """One mined block: height, wall-clock time, finder, value paid."""

    height: int
    timestamp_h: float
    miner: str
    reward_coins: float


@dataclass
class Blockchain:
    """One coin's chain state within the mining simulation."""

    spec: CoinSpec
    difficulty: float
    rule: DifficultyRule = field(default_factory=StaticDifficulty)
    blocks: List[Block] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.difficulty <= 0:
            raise SimulationError(
                f"{self.spec.name}: initial difficulty must be positive"
            )

    @property
    def height(self) -> int:
        return len(self.blocks)

    @property
    def target_interval_h(self) -> float:
        return self.spec.block_interval_s / 3600.0

    def append(self, timestamp_h: float, miner: str) -> Block:
        """Record a found block and run the difficulty rule."""
        if self.blocks and timestamp_h < self.blocks[-1].timestamp_h:
            raise SimulationError(
                f"{self.spec.name}: block timestamps must be non-decreasing"
            )
        block = Block(
            height=self.height,
            timestamp_h=timestamp_h,
            miner=miner,
            reward_coins=self.spec.coins_per_block,
        )
        self.blocks.append(block)
        timestamps = [b.timestamp_h for b in self.blocks]
        self.difficulty = self.rule.adjust(
            timestamps, self.difficulty, self.target_interval_h
        )
        if self.difficulty <= 0:
            raise SimulationError(f"{self.spec.name}: difficulty rule produced ≤ 0")
        return block

    def rewards_by_miner(self) -> Dict[str, float]:
        """Total coin units each miner earned on this chain."""
        totals: Dict[str, float] = {}
        for block in self.blocks:
            totals[block.miner] = totals.get(block.miner, 0.0) + block.reward_coins
        return totals

    def blocks_in_window(self, start_h: float, end_h: float) -> int:
        """How many blocks landed in the half-open window [start, end)."""
        return sum(1 for b in self.blocks if start_h <= b.timestamp_h < end_h)

    def mean_interval_h(self, last: Optional[int] = None) -> Optional[float]:
        """Mean spacing of the last *last* blocks (None = whole chain)."""
        times = [b.timestamp_h for b in self.blocks]
        if last is not None:
            times = times[-last - 1 :]
        if len(times) < 2:
            return None
        return (times[-1] - times[0]) / (len(times) - 1)
