"""Game of Coins — a reproduction of Spiegelman, Keidar & Tennenholtz
(ICDCS 2021 / arXiv:1805.08979).

The library models strategic mining across multiple cryptocurrencies as
a game, proves-by-execution the paper's two main results — every
better-response learning converges to a pure equilibrium (Theorem 1),
and a dynamic reward design mechanism can steer the system between any
two equilibria (Algorithm 2 / Theorem 2) — and embeds the game in
market and proof-of-work substrates that reproduce the paper's
motivating Figure 1.

Quickstart::

    from repro import Game, LearningEngine, random_configuration

    game = Game.create(powers=[50, 30, 20, 10, 5], reward_values=[100, 60, 30])
    start = random_configuration(game, seed=1)
    trajectory = LearningEngine().run(game, start, seed=2)
    assert trajectory.converged and game.is_stable(trajectory.final)

Performance & backends
----------------------
All sequential dynamics run through **one trajectory loop**
(:func:`repro.learning.engine.run_better_response`) written against the
strategy-view protocol (:class:`repro.learning.view.GameView`): the
policy decides *where*, the scheduler decides *who*, and the view
answers every evaluation query. The ``backend`` knob picks the view:

``backend="fast"`` (the default)
    :class:`repro.kernel.KernelView`. Powers and rewards are
    normalized to common integer denominators once per game; state is
    a coin index per miner plus an incrementally maintained integer
    mass per coin (O(1) per step); every better-response / stability
    comparison is a plain integer cross-multiplication. The fast
    backend is *exact*: it reproduces the Fraction core's decisions
    bit-for-bit (same strict inequalities, same tie-breaks, same RNG
    draw sequence), which ``tests/test_kernel_parity.py`` and
    ``tests/test_view_parity.py`` assert on hundreds of randomized
    games — for standard **and custom** policies/schedulers alike,
    since the same strategy code runs on both views. Restricted
    (asymmetric) games ride the same kernel through a per-miner
    allowed-coin mask pushed into the view.

``backend="exact"``
    :class:`repro.learning.ExactView` — the original Fraction
    arithmetic. Kept for audits; no strategy *needs* it anymore.

``backend="class"``
    :class:`repro.kernel.ClassView` — the kernel view plus
    per-(power, allowed-set)-class memoization of better-response
    scans. Decision-identical to ``"fast"``; pays off when many miners
    are interchangeable.

To write a custom strategy, subclass
:class:`~repro.learning.policies.BetterResponsePolicy` and override
``choose_view(self, view, miner, rng)`` (or
:class:`~repro.learning.schedulers.ActivationScheduler` and
``pick_view``); query the view and it runs at kernel speed on the
default backend. The pre-view signatures
(``choose(game, config, miner, rng)`` / ``pick(...)``) keep working
through a thin adapter. See README "Writing custom strategies" for
measured numbers (~9× on an E9-sized custom-policy workload).

Many-trajectory workloads (seeds × schedulers × policies) go through
**one front door**: :func:`repro.run_many`. Describe each batch as a
:class:`repro.RunSpec` (game + runs + policy/scheduler or a noisy
engine) and pick a mechanism with ``executor=`` — ``"vectorized"``
hands same-shape trajectory cells to the tensor kernel
(:mod:`repro.kernel.tensor`), which advances the whole population per
numpy step; ``"process"``/``"thread"`` fan out over
:mod:`concurrent.futures` pools; ``"auto"`` (the default) picks for
you. Per-run RNG streams are spawned up front from one root seed and
the tensor kernel replicates the scalar stepper's draw sequence
bit-for-bit, so **every executor returns identical results** —
``tests/test_tensor_parity.py`` asserts finals, step counts and final
RNG states match the scalar :class:`~repro.kernel.KernelView` stepper
on hundreds of randomized games. The older per-layer runners
(:class:`repro.kernel.BatchRunner`,
:class:`~repro.stochastic.noisy_engine.NoisyBatchRunner`) remain as
the implementation substrate, and the experiment runners' ``workers=``
knob is a deprecated spelling of ``executor="process"``. Measured:
a 1000-trajectory E2-style population (100×10) runs ~12× faster
vectorized than multi-process on one core.

Population-compressed dynamics
~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~
When miners are interchangeable — equal kernel-scaled power *and*
equal allowed-coin set — the per-miner representation is pure
redundancy. :class:`repro.kernel.ClassGame` stores a configuration as
an integer *count matrix* (miners per class × coin) and
:func:`repro.kernel.run_class_better_response` runs exact
better-response dynamics over counts, moving whole chunks of
interchangeable miners per macro step with a closed-form maximal run
length. Populations of millions converge exactly in milliseconds on
one core; ``run_many`` routes ``RunSpec(kind="classes")`` cells
through it, and build one ``from_spec([(power, allowed, count), …])``
without ever materializing miners. Stable count profiles
orbit-expand to bit-for-bit the per-miner equilibrium sets
(``tests/test_classes.py`` asserts this against
:class:`~repro.kernel.space.ConfigSpace` on hundreds of games).

Exact enumeration
~~~~~~~~~~~~~~~~~
The exact analyses — ``enumerate_equilibria``,
``analyze_improvement_dag`` (Theorem 1's acyclicity, the exact longest
improving path, sinks), ``reachable_equilibria`` and the Proposition 1
refuter ``find_nonzero_four_cycle`` — default to ``backend="space"``:
:class:`repro.kernel.space.ConfigSpace` represents each configuration
as a base-``|C|`` integer code, walks the space in Gray-code order
(one miner changes coin per step, so the integer mass vector updates
in O(1) per node), answers every query through the kernel's integer
cross-multiplication, and enumerates only canonical orbit
representatives when the game has interchangeable miners (a
12-equal-miner × 3-coin game shrinks from 531,441 configurations to
91 orbits). Results — content and order, after orbit expansion — are
bit-for-bit those of ``backend="exact"``, the Fraction brute force,
which ``tests/test_space_parity.py`` asserts on ~100 games. Measured:
the seed-size Theorem 1 workload (six 5×2 games) runs ~55× faster
(176 ms → 3.2 ms), a 12×2 game ~440× (13.4 s → 0.03 s); practical
scan limits rose from 100k Fraction nodes to 2M integer-code nodes.

The engine is *mask-aware*: all four entry points also accept a
:class:`~repro.core.restricted.RestrictedGame` (or a plain game plus
an ``allowed=`` per-miner coin mask) and then analyze the paper's
asymmetric case exactly — each miner's digit becomes an alphabet of
its allowed coin indices, both walks visit only mask-valid codes with
the same O(1) incremental updates, and symmetry merges only miners
with equal power *and* equal allowed set. Restricted equilibrium
sets, the restricted improvement DAG (Theorem 1 survives — the
restriction only removes edges), exact longest legal paths, and
legal-cycle Proposition 1 witnesses all match the Fraction brute
force over ``RestrictedGame.all_configurations``
configuration-for-configuration
(``tests/test_restricted_space_parity.py``). Measured: four E11-sized
hardware-restricted games (10×4) run ~110× faster (4.4 s → 40 ms),
and E11's exact-enumeration tier certifies every game's full
restricted equilibrium count and worst-case legal path at default
sizes.

Stochastic realization
~~~~~~~~~~~~~~~~~~~~~~
Everything above works on *expected* payoffs; :mod:`repro.stochastic`
realizes the randomness they integrate over. An exact-rational block
lottery (integer cumulative thresholds, no float in any win decision)
turns a configuration into sampled per-miner rewards;
:class:`~repro.stochastic.noisy_engine.NoisyLearningEngine` runs
better-response learning on *estimated* payoffs with a pluggable
per-decision sample budget, and the risk layer measures what the
expectation hides — reward variance (closed form and sampled),
ruin-style tail probabilities, time-to-equilibrium distributions, and
the misconvergence rate of noisy learning against the exact
ConfigSpace equilibrium set. Fixed-seed noisy batches are bit-identical
across serial, threaded and multi-process execution
(:class:`~repro.stochastic.noisy_engine.NoisyBatchRunner`), and a
chainsim bridge reconciles the lottery with the event-driven PoW
simulator. E15/E16 report the headline numbers.

To check a working tree locally the way CI does::

    PYTHONPATH=src python -m pytest -x -q          # tier-1 tests
    ruff check src tests                           # lint (CI's scope)
    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only  # benches

Subpackages
-----------
``repro.core``
    Miners, coins, configurations, the game, potentials, equilibria,
    assumption checkers (paper Sections 2–4, Appendices A–B).
``repro.kernel``
    The integer fast path: :class:`~repro.kernel.core.KernelGame`
    normalization, the :class:`~repro.kernel.engine.KernelView`
    strategy-view implementation behind ``backend="fast"``, the
    :class:`~repro.kernel.space.ConfigSpace` enumeration engine behind
    ``backend="space"``, the tensor population kernel
    (:mod:`repro.kernel.tensor`) behind ``executor="vectorized"``, the
    population-compressed class kernel (:mod:`repro.kernel.classes`)
    behind ``kind="classes"`` / ``backend="class"``, and the
    :class:`~repro.kernel.batch.BatchRunner` pool substrate.
``repro.learning``
    The :class:`~repro.learning.view.GameView` strategy-view protocol,
    better-response policies × activation schedulers, and the single
    view-driven trajectory loop every sequential/simultaneous dynamic
    shares; an MWU regret-learning baseline.
``repro.design``
    The dynamic reward design mechanism (Section 5) with cost
    accounting and naive single-shot baselines.
``repro.manipulation``
    Proposition 2 witnesses; whale-transaction and exchange-rate cost
    models with ROI reports.
``repro.market``
    Coin specs, exchange-rate/fee processes, coin weights, miner
    populations, the November-2017 BTC/BCH scenario.
``repro.chainsim``
    Event-driven PoW simulation: block lotteries, difficulty rules,
    strategic switching at block granularity.
``repro.analysis``
    Welfare (Observation 3), price of anarchy/stability, convergence
    statistics, exact improvement-DAG analysis, basins of attraction,
    51%-security metrics, and the sampled-side risk re-exports.
``repro.stochastic``
    The Monte Carlo realization layer: exact-rational block lotteries,
    payoff estimators with confidence intervals, the noisy
    better-response engine + batch runner, risk/misconvergence
    analysis, and the chainsim bridge.
``repro.experiments``
    The E1–E16 experiment runners behind ``benchmarks/``.
``repro.obs``
    Zero-overhead observability: the :class:`~repro.obs.Recorder`
    counter/timer/event protocol (NullRecorder default — disabled
    instrumentation costs nothing and changes nothing), JSONL traces,
    run manifests, the ``repro.*`` logging tree, and the CLI's
    ``--metrics``/``--trace`` surface.

Module layer map (``repro.run`` sits on top)::

    repro.run (RunSpec / run_many)          ← the batch front door
      ├─ repro.kernel.tensor                ← vectorized populations
      ├─ repro.kernel.classes               ← population-compressed counts
      ├─ repro.kernel.batch                 ← pooled/serial trajectories
      └─ repro.stochastic.noisy_engine      ← noisy replication batches
    repro.obs (Recorder / traces / manifests) ← every layer emits into it
"""

from repro.core import (
    Coin,
    Configuration,
    Game,
    Miner,
    RewardFunction,
    compare_potential,
    enumerate_equilibria,
    greedy_equilibrium,
    make_coins,
    make_miners,
    proposition1_counterexample,
    random_configuration,
    random_game,
    rpu_list,
    sorted_by_power,
    symmetric_potential,
    two_distinct_equilibria,
)
from repro.design import DynamicRewardDesign, MechanismResult
from repro.exceptions import (
    AssumptionViolatedError,
    ConvergenceError,
    GameOfCoinsError,
    InvalidConfigurationError,
    InvalidModelError,
    NotAnEquilibriumError,
    RewardDesignError,
    SimulationError,
)
from repro.kernel import (
    BatchRunner,
    ClassGame,
    ClassRunResult,
    ClassView,
    KernelGame,
    TrajectorySummary,
    run_class_better_response,
    run_class_simultaneous,
    run_trajectory_batch,
)
from repro.learning import (
    BestResponsePolicy,
    LearningEngine,
    MinimalGainPolicy,
    RandomImprovingPolicy,
    Trajectory,
    converge,
)
from repro.manipulation import find_better_equilibrium_exhaustive, manipulation_roi
from repro import obs
from repro.run import EXECUTORS, RunSpec, run_many
from repro.kernel.batch import CellStats
from repro.sweep import SweepError, SweepGrid, labeled, merge_sweep, run_sweep
from repro.stochastic import (
    NoisyBatchRunner,
    NoisyLearningEngine,
    NoisyRunResult,
    estimate_payoffs,
    misconvergence_profile,
    reward_risk,
    run_noisy_batch,
    sample_block_wins,
)

__version__ = "1.4.0"

__all__ = [
    "Coin",
    "Configuration",
    "Game",
    "Miner",
    "RewardFunction",
    "compare_potential",
    "enumerate_equilibria",
    "greedy_equilibrium",
    "make_coins",
    "make_miners",
    "proposition1_counterexample",
    "random_configuration",
    "random_game",
    "rpu_list",
    "sorted_by_power",
    "symmetric_potential",
    "two_distinct_equilibria",
    "DynamicRewardDesign",
    "MechanismResult",
    "AssumptionViolatedError",
    "ConvergenceError",
    "GameOfCoinsError",
    "InvalidConfigurationError",
    "InvalidModelError",
    "NotAnEquilibriumError",
    "RewardDesignError",
    "SimulationError",
    "BatchRunner",
    "ClassGame",
    "ClassRunResult",
    "ClassView",
    "KernelGame",
    "TrajectorySummary",
    "run_class_better_response",
    "run_class_simultaneous",
    "run_trajectory_batch",
    "BestResponsePolicy",
    "LearningEngine",
    "MinimalGainPolicy",
    "RandomImprovingPolicy",
    "Trajectory",
    "converge",
    "find_better_equilibrium_exhaustive",
    "manipulation_roi",
    "EXECUTORS",
    "RunSpec",
    "run_many",
    "CellStats",
    "SweepError",
    "SweepGrid",
    "labeled",
    "merge_sweep",
    "run_sweep",
    "obs",
    "NoisyBatchRunner",
    "NoisyLearningEngine",
    "NoisyRunResult",
    "estimate_payoffs",
    "misconvergence_profile",
    "reward_risk",
    "run_noisy_batch",
    "sample_block_wins",
    "__version__",
]
