"""Population-compressed class kernel: exact dynamics for millions of miners.

Every dynamic in the library — better-response, simultaneous, noisy,
enumeration — only ever distinguishes miners up to their
(power, allowed-coin-mask) *class*: two miners with equal power and
equal alphabet see identical payoffs and identical move legality at
every state. :class:`~repro.kernel.space.ConfigSpace` already exploits
this as an enumeration trick (symmetry orbits); this module promotes it
to the *state representation*. A configuration of a
:class:`ClassGame` is an integer count matrix ``counts[class][coin]``
instead of a coin per miner, so the cost of a better-response scan is
``O(#classes · #coins²)`` regardless of population — a million miners
in six hardware tiers step as fast as six miners.

Everything stays exact: powers and rewards are normalized to common
integer denominators exactly like :class:`~repro.kernel.core.KernelGame`
(the same ``_common_integers`` scaling, so class-kernel comparisons are
bit-for-bit the per-miner kernel's), an improving move is "move one
miner of class *i* from coin *c* to coin *c′*" decided by the same
integer cross-multiplication, and payoffs are recovered per class as
:class:`fractions.Fraction`.

Three entry layers:

:func:`run_class_better_response` / :func:`run_class_simultaneous`
    Count-level steppers. ``chunk=True`` moves the *maximal* run of
    miners of one class for which every successive single move is still
    improving (a closed-form integer bound), collapsing the
    ``O(population)`` tail of sequential convergence into
    ``O(log population)`` macro steps — this is what makes million-miner
    scenarios converge in seconds while remaining a legitimate
    better-response path under Theorem 1.
:class:`ClassView`
    A :class:`~repro.learning.view.GameView` implementation (a
    :class:`~repro.kernel.engine.KernelView` subclass) that memoizes
    improving-move scans per (class, coin) pair, so the existing
    policies/schedulers/engines drive compressed games unchanged —
    decision-for-decision and RNG-draw-for-draw identical to the
    per-miner backends (``backend="class"``).
:func:`repro.run_many` (``kind="classes"`` cells)
    The population/batch route: seeded multinomial random starts, one
    compressed run per cell repetition.

Parity is the wall: ``tests/test_classes.py`` checks equilibrium sets
and convergence verdicts against :class:`ConfigSpace` /
:class:`KernelView` after orbit expansion, following the differential
pattern of the earlier kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import comb, factorial
from time import perf_counter
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro._numeric import Number, to_positive_fraction
from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.core.restricted import RestrictedGame, normalize_mask
from repro.exceptions import (
    ConvergenceError,
    InvalidConfigurationError,
    InvalidModelError,
)
from repro.kernel.core import KernelGame, _common_integers
from repro.kernel.engine import KernelView
from repro.obs.recorder import get_recorder
from repro.util.rng import RngLike, make_rng

__all__ = [
    "CLASS_POLICIES",
    "CLASS_SCHEDULERS",
    "ClassGame",
    "ClassRunResult",
    "ClassSimultaneousResult",
    "ClassStep",
    "ClassTrajectory",
    "ClassView",
    "Profile",
    "run_class_better_response",
    "run_class_simultaneous",
]

#: An immutable count-matrix snapshot: ``profile[class][coin]`` miners.
Profile = Tuple[Tuple[int, ...], ...]

#: Class-symmetric policy names the count-level stepper accepts. They
#: mirror the per-miner policies of the same names; ``"max-rpu"`` is
#: omitted because for a fixed mover RPU order equals payoff order, so
#: it is ``"best-response"`` with the opposite tie-break — not a new
#: class-level behaviour.
CLASS_POLICIES = ("random-improving", "best-response", "minimal-gain", "first-improving")

#: Class-symmetric scheduler names: ``"uniform"`` activates a uniformly
#: random unstable *miner* (counts weight the draw), ``"first-unstable"``
#: the first unstable (class, coin) pair in canonical order.
CLASS_SCHEDULERS = ("uniform", "first-unstable")

#: Step budget default, shared with the per-miner engine's convention.
DEFAULT_MAX_STEPS = 1_000_000

#: Total-population cap: beyond this the count matrix is almost surely a
#: spec typo (and orbit/multinomial bookkeeping stops being meaningful).
MAX_POPULATION = 10**12


def _profile(counts: Sequence[Sequence[int]]) -> Profile:
    return tuple(tuple(row) for row in counts)


def _compositions(total: int, slots: int) -> Iterator[Tuple[int, ...]]:
    """All ways to split *total* miners over *slots* coins, exhaustively."""
    if slots == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, slots - 1):
            yield (first,) + rest


class ClassGame:
    """A game over miner *classes*: (power, alphabet, population) triples.

    Construct with :meth:`from_game` (compresses a :class:`Game` or
    :class:`RestrictedGame` — classes are exactly the symmetry blocks of
    :class:`~repro.kernel.space.ConfigSpace`, in first-miner order) or
    :meth:`from_spec` (directly from ``[(power, allowed, count), ...]``
    with populations up to 10⁶ and beyond — no per-miner objects are
    ever materialized).

    State is a count matrix ``counts[class][coin]`` (plain nested lists
    of ints) plus an integer ``mass`` vector per coin maintained
    incrementally by the steppers. All predicates are exact integer
    cross-multiplications on the same normalized scale as
    :class:`~repro.kernel.core.KernelGame`, so class-level verdicts are
    bit-for-bit the per-miner kernel's.
    """

    __slots__ = (
        "n_classes",
        "n_coins",
        "total_miners",
        "powers",
        "rewards",
        "populations",
        "alphabets",
        "power_fractions",
        "reward_fractions",
        "coin_names",
        "class_names",
        "game",
        "kernel",
        "members",
        "class_of",
        "_allowed_sets",
    )

    def __init__(
        self,
        *,
        power_fractions: Sequence[Fraction],
        reward_fractions: Sequence[Fraction],
        populations: Sequence[int],
        alphabets: Sequence[Tuple[int, ...]],
        coin_names: Sequence[str],
        class_names: Optional[Sequence[str]] = None,
        game: Optional[Game] = None,
        kernel: Optional[KernelGame] = None,
        members: Optional[Sequence[Tuple[int, ...]]] = None,
        class_of: Optional[Sequence[int]] = None,
    ):
        self.power_fractions: Tuple[Fraction, ...] = tuple(power_fractions)
        self.reward_fractions: Tuple[Fraction, ...] = tuple(reward_fractions)
        self.populations: Tuple[int, ...] = tuple(populations)
        self.alphabets: Tuple[Tuple[int, ...], ...] = tuple(alphabets)
        self.coin_names: Tuple[str, ...] = tuple(coin_names)
        self.n_classes = len(self.populations)
        self.n_coins = len(self.coin_names)
        self.total_miners = sum(self.populations)
        # The same scaling as KernelGame: gcd over a multiset equals gcd
        # over its distinct values, so the per-class integers match the
        # per-miner kernel's integers member for member.
        self.powers: List[int] = _common_integers(self.power_fractions)
        self.rewards: List[int] = _common_integers(self.reward_fractions)
        self.class_names: Tuple[str, ...] = (
            tuple(class_names)
            if class_names is not None
            else tuple(f"t{k + 1}" for k in range(self.n_classes))
        )
        self.game = game
        self.kernel = kernel
        self.members: Optional[Tuple[Tuple[int, ...], ...]] = (
            tuple(tuple(block) for block in members) if members is not None else None
        )
        self.class_of: Optional[Tuple[int, ...]] = (
            tuple(class_of) if class_of is not None else None
        )
        self._allowed_sets: Tuple[frozenset, ...] = tuple(
            frozenset(alphabet) for alphabet in self.alphabets
        )
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("classes.compressions")
            recorder.event(
                "classes.compress",
                miners=self.total_miners,
                classes=self.n_classes,
                ratio=self.total_miners / self.n_classes,
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_game(
        cls,
        game_or_restricted: Union[Game, RestrictedGame],
        *,
        allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
    ) -> "ClassGame":
        """Compress a per-miner game into its (power, alphabet) classes.

        Classes are exactly the symmetry blocks of
        :class:`~repro.kernel.space.ConfigSpace` — grouped on
        (kernel-scaled power, allowed-coin alphabet), ordered by first
        miner — so class count matrices and canonical orbit
        representatives are two encodings of the same objects.
        """
        if isinstance(game_or_restricted, RestrictedGame):
            if allowed is not None:
                raise InvalidModelError(
                    "pass either a RestrictedGame or an allowed= mask, not both"
                )
            allowed = game_or_restricted.allowed_map()
            game = game_or_restricted.game
        else:
            game = game_or_restricted
        kernel = KernelGame(game)
        mask = normalize_mask(game, allowed)
        full = tuple(range(kernel.n_coins))
        if mask is None:
            miner_alphabets: Tuple[Tuple[int, ...], ...] = (full,) * kernel.n_miners
        else:
            coin_index = kernel.coin_index
            miner_alphabets = tuple(
                tuple(coin_index[coin] for coin in mask[miner])
                for miner in game.miners
            )
        blocks: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}
        for i, power in enumerate(kernel.powers):
            blocks.setdefault((power, miner_alphabets[i]), []).append(i)
        # dict insertion order is first-appearance order, which equals
        # ConfigSpace._blocks' sort by first member index.
        members = [tuple(indices) for indices in blocks.values()]
        class_of = [0] * kernel.n_miners
        for k, indices in enumerate(members):
            for i in indices:
                class_of[i] = k
        miners = game.miners
        return cls(
            power_fractions=[miners[indices[0]].power for indices in members],
            reward_fractions=kernel.reward_fractions,
            populations=[len(indices) for indices in members],
            alphabets=[miner_alphabets[indices[0]] for indices in members],
            coin_names=kernel.coin_names,
            game=game,
            kernel=kernel,
            members=members,
            class_of=class_of,
        )

    @classmethod
    def from_spec(
        cls,
        spec: Sequence[Tuple[Number, Optional[Iterable[int]], int]],
        rewards: Sequence[Number],
        *,
        coin_names: Optional[Sequence[str]] = None,
    ) -> "ClassGame":
        """Build directly from ``[(power, allowed, count), ...]`` triples.

        ``allowed`` is ``None`` (every coin) or an iterable of coin
        *indices*; ``count`` is the class population. Entries with equal
        (power, allowed) merge into one class, populations summed — the
        class list always matches what :meth:`from_game` would produce
        for the expanded game, so spec-built and game-built dynamics are
        interchangeable. Coin names default to ``c1..cK``, the
        :meth:`Game.create` convention.
        """
        n_coins = len(rewards)
        if n_coins < 1:
            raise InvalidModelError("a class game needs at least one coin")
        reward_fractions = [
            to_positive_fraction(value, name=f"reward of coin {j + 1}")
            for j, value in enumerate(rewards)
        ]
        names = (
            tuple(coin_names)
            if coin_names is not None
            else tuple(f"c{j + 1}" for j in range(n_coins))
        )
        if len(names) != n_coins:
            raise InvalidModelError(
                f"{len(names)} coin names for {n_coins} rewards"
            )
        if not spec:
            raise InvalidModelError("a class game needs at least one class")
        full = tuple(range(n_coins))
        merged: Dict[Tuple[Fraction, Tuple[int, ...]], int] = {}
        for index, (power, allowed, count) in enumerate(spec):
            label = f"class {index + 1}"
            power_frac = to_positive_fraction(power, name=f"{label} power")
            if isinstance(count, bool) or not isinstance(count, int):
                raise InvalidModelError(
                    f"{label} count must be an int, got {count!r}"
                )
            if count < 1:
                raise InvalidModelError(
                    f"{label} is empty: count must be ≥ 1, got {count}"
                )
            if allowed is None:
                alphabet = full
            else:
                indices = sorted(set(allowed))
                if not indices:
                    raise InvalidModelError(f"{label} has an empty allowed set")
                for j in indices:
                    if isinstance(j, bool) or not isinstance(j, int):
                        raise InvalidModelError(
                            f"{label} allowed entries must be coin indices, got {j!r}"
                        )
                    if not 0 <= j < n_coins:
                        raise InvalidModelError(
                            f"{label} allows coin index {j}, outside 0..{n_coins - 1}"
                        )
                alphabet = tuple(indices)
            key = (power_frac, alphabet)
            merged[key] = merged.get(key, 0) + count
        total = sum(merged.values())
        if total > MAX_POPULATION:
            raise InvalidModelError(
                f"total population {total} overflows the {MAX_POPULATION} cap"
            )
        return cls(
            power_fractions=[power for power, _ in merged],
            reward_fractions=reward_fractions,
            populations=list(merged.values()),
            alphabets=[alphabet for _, alphabet in merged],
            coin_names=names,
        )

    def spec(self) -> Tuple[Tuple[Fraction, Tuple[int, ...], int], ...]:
        """The normalized ``(power, alphabet, population)`` triples."""
        return tuple(
            (self.power_fractions[k], self.alphabets[k], self.populations[k])
            for k in range(self.n_classes)
        )

    @property
    def compression(self) -> float:
        """Miners-per-class ratio — the state-size reduction factor."""
        return self.total_miners / self.n_classes

    def __repr__(self) -> str:
        return (
            f"ClassGame({self.total_miners} miners in {self.n_classes} classes, "
            f"{self.n_coins} coins)"
        )

    # ------------------------------------------------------------------
    # State construction and validation
    # ------------------------------------------------------------------

    def validate_counts(self, counts: Sequence[Sequence[int]]) -> None:
        """Exact shape/mask/population check; raises on any violation."""
        if len(counts) != self.n_classes:
            raise InvalidConfigurationError(
                f"count matrix has {len(counts)} rows for {self.n_classes} classes"
            )
        for k, row in enumerate(counts):
            if len(row) != self.n_coins:
                raise InvalidConfigurationError(
                    f"class {self.class_names[k]!r} row has {len(row)} entries "
                    f"for {self.n_coins} coins"
                )
            allowed = self._allowed_sets[k]
            total = 0
            for j, value in enumerate(row):
                if isinstance(value, bool) or not isinstance(value, int):
                    raise InvalidConfigurationError(
                        f"class {self.class_names[k]!r} count on coin "
                        f"{self.coin_names[j]!r} must be an int, got {value!r}"
                    )
                if value < 0:
                    raise InvalidConfigurationError(
                        f"class {self.class_names[k]!r} has negative count on "
                        f"coin {self.coin_names[j]!r}"
                    )
                if value and j not in allowed:
                    raise InvalidConfigurationError(
                        f"class {self.class_names[k]!r} sits on coin "
                        f"{self.coin_names[j]!r} which its mask does not allow"
                    )
                total += value
            if total != self.populations[k]:
                raise InvalidConfigurationError(
                    f"class {self.class_names[k]!r} counts sum to {total}, "
                    f"population is {self.populations[k]}"
                )

    def mass_of(self, counts: Sequence[Sequence[int]]) -> List[int]:
        """Integer ``M_c(s)`` per coin for a count matrix."""
        mass = [0] * self.n_coins
        for k, row in enumerate(counts):
            power = self.powers[k]
            for j, value in enumerate(row):
                if value:
                    mass[j] += value * power
        return mass

    def random_counts(self, seed: RngLike = None) -> List[List[int]]:
        """A uniform random start: each miner picks uniformly from its
        alphabet, aggregated per class as one multinomial draw."""
        rng = make_rng(seed)
        counts = [[0] * self.n_coins for _ in range(self.n_classes)]
        for k, alphabet in enumerate(self.alphabets):
            population = self.populations[k]
            if len(alphabet) == 1:
                counts[k][alphabet[0]] = population
                continue
            draws = rng.multinomial(population, [1.0 / len(alphabet)] * len(alphabet))
            for j, value in zip(alphabet, draws):
                counts[k][j] = int(value)
        return counts

    def counts_of(self, config: Configuration) -> List[List[int]]:
        """The count matrix of a per-miner configuration (game-backed)."""
        kernel = self._require_game()
        return self.counts_of_assignment(kernel.assignment_of(config))

    def counts_of_assignment(self, assign: Sequence[int]) -> List[List[int]]:
        """The count matrix of a per-miner coin-index assignment."""
        self._require_game()
        assert self.class_of is not None
        counts = [[0] * self.n_coins for _ in range(self.n_classes)]
        for i, j in enumerate(assign):
            counts[self.class_of[i]][j] += 1
        return counts

    def assignment_of_counts(self, counts: Sequence[Sequence[int]]) -> List[int]:
        """The canonical per-miner assignment of a count matrix:
        within each class block, coin indices ascending — exactly the
        :meth:`ConfigSpace.iter_canonical` representative of the orbit."""
        self._require_game()
        assert self.members is not None
        assign = [0] * sum(self.populations)
        for k, block in enumerate(self.members):
            slot = 0
            for j in range(self.n_coins):
                for _ in range(counts[k][j]):
                    assign[block[slot]] = j
                    slot += 1
        return assign

    def _require_game(self) -> KernelGame:
        if self.kernel is None:
            raise InvalidModelError(
                "this ClassGame was built from a spec; per-miner "
                "configurations exist only for game-backed class games"
            )
        return self.kernel

    # ------------------------------------------------------------------
    # Index-level better-response structure (the hot path)
    # ------------------------------------------------------------------

    def improving(self, k: int, src: int, dst: int, mass: Sequence[int]) -> bool:
        """Whether one miner of class *k* improves by moving src → dst."""
        rewards = self.rewards
        return rewards[dst] * mass[src] > rewards[src] * (mass[dst] + self.powers[k])

    def better_targets(self, k: int, src: int, mass: Sequence[int]) -> List[int]:
        """Improving destination coins for class *k* from *src*, ascending."""
        rewards = self.rewards
        reward_cur = rewards[src]
        mass_cur = mass[src]
        power = self.powers[k]
        return [
            j
            for j in self.alphabets[k]
            if j != src and rewards[j] * mass_cur > reward_cur * (mass[j] + power)
        ]

    def unstable_pairs(
        self, counts: Sequence[Sequence[int]], mass: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """Occupied (class, coin) pairs with an improving move, in
        canonical order (classes outer, source coins ascending)."""
        rewards = self.rewards
        result: List[Tuple[int, int]] = []
        for k, alphabet in enumerate(self.alphabets):
            row = counts[k]
            power = self.powers[k]
            for src in alphabet:
                if not row[src]:
                    continue
                reward_cur = rewards[src]
                mass_cur = mass[src]
                for j in alphabet:
                    if j != src and rewards[j] * mass_cur > reward_cur * (mass[j] + power):
                        result.append((k, src))
                        break
        return result

    def is_stable_counts(
        self,
        counts: Sequence[Sequence[int]],
        mass: Optional[Sequence[int]] = None,
    ) -> bool:
        """Early-exit stability verdict over the count matrix."""
        if mass is None:
            mass = self.mass_of(counts)
        rewards = self.rewards
        for k, alphabet in enumerate(self.alphabets):
            row = counts[k]
            power = self.powers[k]
            for src in alphabet:
                if not row[src]:
                    continue
                reward_cur = rewards[src]
                mass_cur = mass[src]
                for j in alphabet:
                    if j != src and rewards[j] * mass_cur > reward_cur * (mass[j] + power):
                        return False
        return True

    def best_target(self, k: int, src: int, mass: Sequence[int]) -> Optional[int]:
        """The payoff-maximizing improving coin for class *k* from *src*.

        Same scan/tie-break as :meth:`KernelGame.best_response_idx`:
        strict improvement over best-so-far, earliest coin wins ties.
        """
        rewards = self.rewards
        power = self.powers[k]
        best_reward = rewards[src]
        best_den = mass[src]
        best: Optional[int] = None
        for j in self.alphabets[k]:
            if j == src:
                continue
            den = mass[j] + power
            if rewards[j] * best_den > best_reward * den:
                best_reward = rewards[j]
                best_den = den
                best = j
        return best

    def minimal_gain_target(
        self, k: int, targets: Sequence[int], mass: Sequence[int]
    ) -> int:
        """Of improving *targets*, the smallest post-move payoff (ties:
        smaller coin name) — :class:`MinimalGainPolicy`'s ordering."""
        rewards = self.rewards
        names = self.coin_names
        power = self.powers[k]
        best = targets[0]
        best_reward = rewards[best]
        best_den = mass[best] + power
        for j in targets[1:]:
            den = mass[j] + power
            lhs = rewards[j] * best_den
            rhs = best_reward * den
            if lhs < rhs or (lhs == rhs and names[j] < names[best]):
                best = j
                best_reward = rewards[j]
                best_den = den
        return best

    def max_chunk(
        self, k: int, src: int, dst: int, mass: Sequence[int], available: int
    ) -> int:
        """The largest q ≤ *available* such that moving q miners of
        class *k* from *src* to *dst* one by one is improving at every
        single step.

        After t moves the (t+1)-th is improving iff
        ``R[dst]·(M[src]−t·p) > R[src]·(M[dst]+(t+1)·p)``, i.e.
        ``t·p·(R[dst]+R[src]) < R[dst]·M[src] − R[src]·(M[dst]+p)`` —
        monotone in t, so the bound is one exact ceiling division.
        """
        rewards = self.rewards
        power = self.powers[k]
        num = rewards[dst] * mass[src] - rewards[src] * (mass[dst] + power)
        if num <= 0:
            return 0
        den = power * (rewards[dst] + rewards[src])
        return min(available, -(-num // den))

    # ------------------------------------------------------------------
    # Payoffs (exact, per class)
    # ------------------------------------------------------------------

    def payoff(self, k: int, j: int, mass_j: int) -> Fraction:
        """One class-*k* miner's exact payoff on coin *j* carrying
        integer mass — powers scale out exactly as in
        :meth:`KernelGame.payoff_fraction`."""
        return Fraction(self.powers[k], mass_j) * self.reward_fractions[j]

    def class_payoffs(
        self, counts: Sequence[Sequence[int]]
    ) -> List[Dict[str, Fraction]]:
        """Per class: coin name → exact per-miner payoff, occupied coins."""
        mass = self.mass_of(counts)
        result: List[Dict[str, Fraction]] = []
        for k, row in enumerate(counts):
            payoffs: Dict[str, Fraction] = {}
            for j, value in enumerate(row):
                if value:
                    payoffs[self.coin_names[j]] = self.payoff(k, j, mass[j])
            result.append(payoffs)
        return result

    # ------------------------------------------------------------------
    # Exact enumeration (small populations)
    # ------------------------------------------------------------------

    def profile_count(self) -> int:
        """Number of mask-valid count matrices (= ConfigSpace orbits)."""
        total = 1
        for k, alphabet in enumerate(self.alphabets):
            m = len(alphabet)
            total *= comb(self.populations[k] + m - 1, m - 1)
        return total

    def iter_profiles(self) -> Iterator[Profile]:
        """All mask-valid count matrices, as immutable snapshots."""
        for counts, _ in self._iter_states():
            yield _profile(counts)

    def _iter_states(self) -> Iterator[Tuple[List[List[int]], List[int]]]:
        """Walk all count matrices with a shared mutable (counts, mass)."""
        counts = [[0] * self.n_coins for _ in range(self.n_classes)]
        mass = [0] * self.n_coins

        def rec(k: int) -> Iterator[Tuple[List[List[int]], List[int]]]:
            if k == self.n_classes:
                yield counts, mass
                return
            alphabet = self.alphabets[k]
            power = self.powers[k]
            row = counts[k]
            for split in _compositions(self.populations[k], len(alphabet)):
                for j, value in zip(alphabet, split):
                    row[j] = value
                    mass[j] += value * power
                yield from rec(k + 1)
                for j, value in zip(alphabet, split):
                    row[j] = 0
                    mass[j] -= value * power

        yield from rec(0)

    def stable_profiles(self, *, max_profiles: Optional[int] = None) -> List[Profile]:
        """All equilibrium count matrices, by exhaustive exact scan.

        ``max_profiles`` caps the number of *scanned* profiles (the
        orbit count), turning combinatorial blowups into
        :class:`InvalidModelError` instead of an unbounded walk.
        """
        if max_profiles is not None and self.profile_count() > max_profiles:
            raise InvalidModelError(
                f"{self.profile_count()} class profiles exceed the "
                f"{max_profiles} scan limit"
            )
        return [
            _profile(counts)
            for counts, mass in self._iter_states()
            if self.is_stable_counts(counts, mass)
        ]

    def orbit_size(self, counts: Sequence[Sequence[int]]) -> int:
        """Per-miner configurations represented by one count matrix —
        the product of per-class multinomial coefficients."""
        total = 1
        for k, row in enumerate(counts):
            mult = factorial(self.populations[k])
            for value in row:
                if value > 1:
                    mult //= factorial(value)
            total *= mult
        return total


# ----------------------------------------------------------------------
# Count-level sequential stepper
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClassStep:
    """One macro step: *moved* miners of one class, src → dst."""

    index: int
    class_index: int
    source: int
    target: int
    moved: int


@dataclass
class ClassTrajectory:
    """Outcome of one count-level better-response run."""

    game: ClassGame
    initial: Profile
    final: Profile
    steps: int
    moved: int
    converged: bool
    #: Per-step records when ``record="steps"``.
    records: Optional[List[ClassStep]] = None
    #: Per-step snapshots (including initial) when ``record="profiles"``.
    profiles: Optional[List[Profile]] = None


#: Recording modes for :func:`run_class_better_response`.
CLASS_RECORD_MODES = ("summary", "steps", "profiles")


def run_class_better_response(
    cgame: ClassGame,
    counts: Sequence[Sequence[int]],
    *,
    policy: str = "random-improving",
    scheduler: str = "uniform",
    seed: RngLike = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    chunk: bool = False,
    record: str = "summary",
    raise_on_budget: bool = True,
) -> ClassTrajectory:
    """One better-response path over a count matrix, to convergence.

    The class-symmetric twin of
    :func:`repro.learning.engine.run_better_response`: the scheduler
    picks an unstable (class, source) pair, the policy an improving
    destination, and one miner moves — or, with ``chunk=True``, the
    maximal run of miners for which each successive single move is
    still improving (see :meth:`ClassGame.max_chunk`), which preserves
    the better-response path property while collapsing population-sized
    move tails into ``O(log population)`` macro steps.

    With every class a singleton, ``policy="random-improving"`` /
    ``scheduler="uniform"`` consume the *same RNG draw sequence* as the
    per-miner engine under the standard strategies, so trajectories are
    draw-for-draw identical — the parity suite asserts this.
    """
    if policy not in CLASS_POLICIES:
        raise ValueError(f"policy must be one of {CLASS_POLICIES}, got {policy!r}")
    if scheduler not in CLASS_SCHEDULERS:
        raise ValueError(
            f"scheduler must be one of {CLASS_SCHEDULERS}, got {scheduler!r}"
        )
    if record not in CLASS_RECORD_MODES:
        raise ValueError(
            f"record must be one of {CLASS_RECORD_MODES}, got {record!r}"
        )
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    cgame.validate_counts(counts)
    rng = make_rng(seed)
    recorder = get_recorder()
    run_started = perf_counter() if recorder.enabled else 0.0

    working = [list(row) for row in counts]
    mass = cgame.mass_of(working)
    initial = _profile(working)
    records: Optional[List[ClassStep]] = [] if record == "steps" else None
    profiles: Optional[List[Profile]] = [initial] if record == "profiles" else None
    powers = cgame.powers
    n_steps = 0
    n_moved = 0
    converged = False
    for index in range(max_steps):
        pairs = cgame.unstable_pairs(working, mass)
        if not pairs:
            converged = True
            break
        if scheduler == "first-unstable":
            k, src = pairs[0]
        else:
            # One uniform draw over unstable *miners*: pairs weighted by
            # their counts, in canonical order — the same distribution
            # (and, for singleton classes, the same draw) as the
            # per-miner UniformRandomScheduler.
            total = 0
            for pk, pc in pairs:
                total += working[pk][pc]
            pick = int(rng.integers(0, total))
            for pk, pc in pairs:
                pick -= working[pk][pc]
                if pick < 0:
                    k, src = pk, pc
                    break
        if policy == "best-response":
            dst = cgame.best_target(k, src, mass)
            assert dst is not None  # the pair was unstable
        else:
            targets = cgame.better_targets(k, src, mass)
            if policy == "first-improving":
                dst = targets[0]
            elif policy == "minimal-gain":
                dst = cgame.minimal_gain_target(k, targets, mass)
            else:
                dst = targets[int(rng.integers(0, len(targets)))]
        moved = (
            cgame.max_chunk(k, src, dst, mass, working[k][src]) if chunk else 1
        )
        power = powers[k]
        working[k][src] -= moved
        working[k][dst] += moved
        mass[src] -= moved * power
        mass[dst] += moved * power
        n_steps += 1
        n_moved += moved
        if records is not None:
            records.append(ClassStep(index, k, src, dst, moved))
        if profiles is not None:
            profiles.append(_profile(working))
    else:
        converged = cgame.is_stable_counts(working, mass)
        if not converged and raise_on_budget:
            raise ConvergenceError(
                f"class better-response did not converge within {max_steps} steps"
            )
    if recorder.enabled:
        # Totals only, once per run — the NullRecorder default stays
        # zero-overhead and the RNG stream is identical either way.
        # Every loop iteration scanned the pairs, plus one epilogue
        # stability check on budget exhaustion: scans = steps + 1.
        recorder.add_time("classes.run", perf_counter() - run_started)
        recorder.count("classes.runs")
        recorder.count("classes.steps", n_steps)
        recorder.count("classes.moves", n_moved)
        recorder.count("classes.scans", n_steps + 1)
        if converged:
            recorder.count("classes.converged")
    return ClassTrajectory(
        game=cgame,
        initial=initial,
        final=_profile(working),
        steps=n_steps,
        moved=n_moved,
        converged=converged,
        records=records,
        profiles=profiles,
    )


# ----------------------------------------------------------------------
# Count-level simultaneous rounds
# ----------------------------------------------------------------------


@dataclass
class ClassSimultaneousResult:
    """Outcome of a synchronous count-level run (cf.
    :class:`repro.learning.simultaneous.SimultaneousResult`)."""

    profiles: List[Profile]
    converged: bool
    cycle_start: Optional[int]

    @property
    def rounds(self) -> int:
        return len(self.profiles) - 1

    @property
    def final(self) -> Profile:
        return self.profiles[-1]

    @property
    def cycled(self) -> bool:
        return self.cycle_start is not None


def run_class_simultaneous(
    cgame: ClassGame,
    counts: Sequence[Sequence[int]],
    *,
    inertia: float = 0.0,
    max_rounds: int = 10_000,
    seed: RngLike = None,
) -> ClassSimultaneousResult:
    """Synchronous best-response rounds over a count matrix.

    Each round every unstable (class, source) pair jumps to its best
    response — evaluated against the pre-round masses, all applied
    together. All miners of one pair share one best response, so whole
    counts move; inertia keeps a ``Binomial(count, inertia)`` draw of
    each pair put (one draw per pair instead of one uniform per miner —
    the same distribution as the per-miner dynamic, at class cost).
    At ``inertia=0`` the dynamic is deterministic, round-for-round
    identical to :func:`repro.learning.simultaneous.run_simultaneous`
    reduced to counts, and a repeated profile proves a permanent cycle.
    """
    if not 0.0 <= inertia < 1.0:
        raise ValueError(f"inertia must be in [0, 1), got {inertia}")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be ≥ 1, got {max_rounds}")
    cgame.validate_counts(counts)
    rng = make_rng(seed)
    working = [list(row) for row in counts]
    mass = cgame.mass_of(working)
    powers = cgame.powers
    initial = _profile(working)
    profiles = [initial]
    seen: Dict[Profile, int] = {initial: 0}
    for round_index in range(1, max_rounds + 1):
        movers: List[Tuple[int, int, int, int]] = []
        for k, alphabet in enumerate(cgame.alphabets):
            row = working[k]
            for src in alphabet:
                count = row[src]
                if not count:
                    continue
                dst = cgame.best_target(k, src, mass)
                if dst is None:
                    continue
                if inertia > 0.0:
                    moving = count - int(rng.binomial(count, inertia))
                    if not moving:
                        continue
                else:
                    moving = count
                movers.append((k, src, dst, moving))
        if not movers:
            return ClassSimultaneousResult(
                profiles=profiles, converged=True, cycle_start=None
            )
        for k, src, dst, moving in movers:
            power = powers[k]
            working[k][src] -= moving
            working[k][dst] += moving
            mass[src] -= moving * power
            mass[dst] += moving * power
        key = _profile(working)
        profiles.append(key)
        if inertia == 0.0:
            previous = seen.get(key)
            if previous is not None:
                return ClassSimultaneousResult(
                    profiles=profiles, converged=False, cycle_start=previous
                )
            seen[key] = round_index
    return ClassSimultaneousResult(
        profiles=profiles,
        converged=cgame.is_stable_counts(working, mass),
        cycle_start=None,
    )


# ----------------------------------------------------------------------
# Batch records (the run_many kind="classes" route)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClassRunResult:
    """One seeded compressed run, as :func:`repro.run_many` returns it."""

    run_index: int
    policy: str
    scheduler: str
    steps: int
    moved: int
    converged: bool
    final: Profile


# ----------------------------------------------------------------------
# The GameView implementation (backend="class")
# ----------------------------------------------------------------------


class ClassView(KernelView):
    """The ``backend="class"`` :class:`~repro.learning.view.GameView`.

    A :class:`KernelView` whose scan queries are memoized per
    (class, coin): every evaluation predicate depends only on the
    querying miner's power, alphabet and current coin — identical for
    all members of one class on one coin — so one improving-move scan
    per occupied pair answers for the whole class, making
    ``unstable_miners`` cost ``O(n + #pairs·#coins)`` instead of
    ``O(n·#coins)``. Answers (values, orders, tie-breaks, RNG draws)
    are bit-for-bit :class:`KernelView`'s for every strategy; only the
    scan *cost* changes. Payoff queries and the selection helpers are
    inherited unchanged — they are per-activation, not per-scan.
    """

    __slots__ = ("_class_of", "_class_powers", "_class_alphabets", "_scan_cache")

    def __init__(
        self,
        game: Game,
        initial: Configuration,
        *,
        allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
        kernel: Optional[KernelGame] = None,
    ):
        super().__init__(game, initial, allowed=allowed, kernel=kernel)
        full = tuple(range(self.kernel.n_coins))
        miner_alphabets = (
            (full,) * self.kernel.n_miners
            if self._allowed_idx is None
            else self._allowed_idx
        )
        blocks: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        class_of: List[int] = []
        powers: List[int] = []
        alphabets: List[Tuple[int, ...]] = []
        for i, power in enumerate(self.kernel.powers):
            key = (power, miner_alphabets[i])
            k = blocks.get(key)
            if k is None:
                k = len(blocks)
                blocks[key] = k
                powers.append(power)
                alphabets.append(miner_alphabets[i])
            class_of.append(k)
        self._class_of: Tuple[int, ...] = tuple(class_of)
        self._class_powers: Tuple[int, ...] = tuple(powers)
        self._class_alphabets: Tuple[Tuple[int, ...], ...] = tuple(alphabets)
        # (class, coin) → ascending improving coin indices, valid for
        # the current masses only; cleared on every apply.
        self._scan_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def _targets(self, k: int, src: int) -> Tuple[int, ...]:
        key = (k, src)
        cached = self._scan_cache.get(key)
        if cached is None:
            rewards = self.kernel.rewards
            mass = self.mass
            power = self._class_powers[k]
            reward_cur = rewards[src]
            mass_cur = mass[src]
            cached = tuple(
                j
                for j in self._class_alphabets[k]
                if j != src and rewards[j] * mass_cur > reward_cur * (mass[j] + power)
            )
            self._scan_cache[key] = cached
        return cached

    # -- evaluation (class-memoized) -----------------------------------

    def improving_moves(self, miner: Miner) -> Tuple[Coin, ...]:
        i = self.kernel.miner_index[miner]
        coins = self.game.coins
        return tuple(
            coins[j] for j in self._targets(self._class_of[i], self.assign[i])
        )

    def best_response(self, miner: Miner) -> Optional[Coin]:
        i = self.kernel.miner_index[miner]
        targets = self._targets(self._class_of[i], self.assign[i])
        if not targets:
            return None
        # Same tie-break as KernelGame.best_response_idx, restricted to
        # the (all-improving) memoized targets: strict improvement over
        # best-so-far, earliest coin wins.
        rewards = self.kernel.rewards
        mass = self.mass
        power = self._class_powers[self._class_of[i]]
        best = targets[0]
        best_reward = rewards[best]
        best_den = mass[best] + power
        for j in targets[1:]:
            den = mass[j] + power
            if rewards[j] * best_den > best_reward * den:
                best_reward = rewards[j]
                best_den = den
                best = j
        return self.game.coins[best]

    def unstable_miners(self) -> Tuple[Miner, ...]:
        miners = self.game.miners
        class_of = self._class_of
        assign = self.assign
        targets = self._targets
        return tuple(
            miners[i]
            for i in range(self.kernel.n_miners)
            if targets(class_of[i], assign[i])
        )

    def is_stable(self) -> bool:
        class_of = self._class_of
        assign = self.assign
        targets = self._targets
        for i in range(self.kernel.n_miners):
            if targets(class_of[i], assign[i]):
                return False
        return True

    # -- state ---------------------------------------------------------

    def apply_index(self, i: int, j: int) -> None:
        super().apply_index(i, j)
        self._scan_cache.clear()

    def __repr__(self) -> str:
        return f"ClassView({self.game!r})"
