"""Index-level exact enumeration over the configuration space ``C^n``.

The seed verifies the paper's exact claims — Theorem 1's acyclic
improvement graph, sink/equilibrium agreement, the worst-case path
bound, Proposition 1's 4-cycle refuter — by brute force over
:class:`~repro.core.configuration.Configuration` objects: each node
costs a fresh tuple + dict, a full Fraction mass recomputation, and
Fraction comparisons. :class:`ConfigSpace` removes all of that:

* every configuration is a **base-``|C|`` integer code** (miner 0 is
  the most significant digit, so numeric code order is exactly the
  order of :meth:`repro.core.game.Game.all_configurations`);
* the space is walked either in **Gray-code order** (one miner changes
  coin per step — the integer ``mass`` vector updates in O(1) per node
  instead of O(n)) or in **product order** (odometer; amortized O(1)
  digit changes) when the seed's scan order must be reproduced
  verbatim;
* every stability / better-move / successor query goes through the
  :class:`~repro.kernel.core.KernelGame` integer cross-multiplication,
  so no Fraction and no Configuration is allocated inside a scan;
* miners with **identical power and identical allowed-coin set are
  interchangeable**, so scans that only need orbit-level answers
  (equilibria, acyclicity, longest path, sinks) enumerate one
  *canonical representative* per orbit — coin indices sorted within
  each equal-power-equal-mask block — with multiplicities, shrinking
  ``|C|^n`` to ``Π_b C(|b|+|A_b|-1, |A_b|-1)`` over blocks with
  alphabet ``A_b``.

The engine is **mask-aware**: a per-miner *allowed-coin* mask (the
asymmetric case of :class:`~repro.core.restricted.RestrictedGame` —
hardware that can only mine a subset of coins) turns each miner's digit
into its own **alphabet** of ascending coin indices. The Gray-code walk
and the product-order odometer then iterate only mask-valid
assignments (the walk runs over digit *positions*, so the O(1)
incremental mass/code update survives arbitrary alphabets), stability
and successor checks consult the mask through the kernel's ``allowed``
candidate lists, and symmetry reduction keys its blocks on
(power, alphabet) — permuting two miners is a better-response-graph
automorphism only if both their powers *and* their allowed sets match,
which keeps the orbit-quotient DAG analysis sound under restriction.
Masks that allow every coin for every miner normalize away entirely,
so the unrestricted hot paths are untouched.

``Configuration`` objects are materialized only at API boundaries
(returned equilibria, graph sinks, 4-cycle witnesses).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from math import comb, factorial
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.core.restricted import RestrictedGame, normalize_mask
from repro.exceptions import InvalidConfigurationError, InvalidModelError
from repro.kernel.core import KernelGame
from repro.obs.recorder import get_recorder


def _distinct_permutations(values: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All distinct orderings of a (sorted) multiset of coin indices."""
    counts: Dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    keys = sorted(counts)
    length = len(values)
    prefix: List[int] = []

    def rec() -> Iterator[Tuple[int, ...]]:
        if len(prefix) == length:
            yield tuple(prefix)
            return
        for key in keys:
            if counts[key]:
                counts[key] -= 1
                prefix.append(key)
                yield from rec()
                prefix.pop()
                counts[key] += 1

    yield from rec()


@lru_cache(maxsize=1024)
def _block_choice_table(
    size: int, alphabet: Tuple[int, ...]
) -> Tuple[Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...], int], ...]:
    """Choice table for one symmetry block: every non-decreasing
    coin-index tuple of length *size* drawn from *alphabet*, its
    per-coin counts and its orbit multiplicity (the multinomial
    coefficient).

    The table depends only on (block size, alphabet) — not on which
    miners form the block or which game owns it — so it is cached at
    module level and shared across every :class:`ConfigSpace` instance:
    repeated ``dag_report``/``stable_codes`` calls on freshly built
    spaces over same-shape games skip the rebuild entirely.
    """
    block = []
    for combo in itertools.combinations_with_replacement(alphabet, size):
        counts: Dict[int, int] = {}
        for j in combo:
            counts[j] = counts.get(j, 0) + 1
        mult = factorial(size)
        for c in counts.values():
            mult //= factorial(c)
        block.append((combo, tuple(sorted(counts.items())), mult))
    return tuple(block)


@dataclass(frozen=True)
class DagReport:
    """Exact facts about a game's improvement DAG (Theorem 1's graph).

    ``longest_path`` is ``None`` when a cycle was found (which Theorem 1
    forbids — it would indicate a payoff-model bug). ``sink_codes`` are
    full-space configuration codes in ascending (= product) order, with
    orbits expanded when symmetry reduction was used, so they always
    denote the complete set of pure (restricted) equilibria.
    ``total_configurations`` counts *mask-valid* configurations when the
    space is restricted.
    """

    acyclic: bool
    longest_path: Optional[int]
    sink_codes: Tuple[int, ...]
    nodes_scanned: int
    total_configurations: int
    symmetry_reduced: bool


class ConfigSpace:
    """An exact, index-level view of a game's configuration space.

    Scans never allocate Configurations or Fractions; the per-node state
    is one ``assign`` list (coin index per miner) and one integer
    ``mass`` list (scaled coin power), both mutated in place by the
    walk generators — callers must copy anything they keep.

    *allowed* restricts each miner to a subset of coins (the
    :class:`~repro.core.restricted.RestrictedGame` mask; miners missing
    from the mapping are unrestricted) — a :class:`RestrictedGame` may
    also be passed directly as the first argument. Codes remain
    full-space base-``|C|`` codes, but the walks visit only mask-valid
    assignments, ``size`` counts only those, and all stability /
    successor / cycle queries consult the mask.
    """

    def __init__(
        self,
        game_or_kernel: Union[Game, KernelGame, RestrictedGame],
        *,
        symmetry: bool = True,
        allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
    ):
        if isinstance(game_or_kernel, RestrictedGame):
            if allowed is not None:
                raise InvalidModelError(
                    "pass either a RestrictedGame or an allowed= mask, not both"
                )
            allowed = game_or_kernel.allowed_map()
            game_or_kernel = game_or_kernel.game
        kernel = (
            game_or_kernel
            if isinstance(game_or_kernel, KernelGame)
            else KernelGame(game_or_kernel)
        )
        self.kernel = kernel
        self.game = kernel.game
        self.n_miners = kernel.n_miners
        self.n_coins = kernel.n_coins
        # Miner 0 is the most significant digit: numeric code order is
        # the order of Game.all_configurations (itertools.product).
        self._place: List[int] = [
            self.n_coins ** (self.n_miners - 1 - i) for i in range(self.n_miners)
        ]
        # Per-miner digit alphabets: the ascending coin indices each
        # miner may sit on. A trivial mask (everything allowed)
        # normalizes to None, so the unrestricted paths below stay
        # byte-for-byte the unmasked code.
        mask = normalize_mask(self.game, allowed)
        if mask is None:
            self._allowed_idx: Optional[Tuple[Tuple[int, ...], ...]] = None
            full = tuple(range(self.n_coins))
            self._alphabets: Tuple[Tuple[int, ...], ...] = (full,) * self.n_miners
            self._allowed_sets: Optional[Tuple[FrozenSet[int], ...]] = None
        else:
            coin_index = kernel.coin_index
            self._allowed_idx = tuple(
                tuple(coin_index[coin] for coin in mask[miner])
                for miner in self.game.miners
            )
            self._alphabets = self._allowed_idx
            self._allowed_sets = tuple(frozenset(a) for a in self._allowed_idx)
        self.masked: bool = self._allowed_idx is not None
        size = 1
        for alphabet in self._alphabets:
            size *= len(alphabet)
        #: Number of (mask-valid) configurations; ``|C|^n`` unmasked.
        self.size: int = size
        # Symmetry blocks: miner indices grouped by (scaled power,
        # alphabet), in miner order. Two miners generate a graph
        # automorphism only when both match — equal power makes their
        # payoffs interchangeable, equal alphabets make the *legality*
        # of every move interchangeable. Only blocks of size ≥ 2
        # generate symmetry.
        by_key: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}
        for i, power in enumerate(kernel.powers):
            by_key.setdefault((power, self._alphabets[i]), []).append(i)
        self._blocks: List[Tuple[Tuple[int, ...], int, Tuple[int, ...]]] = [
            (tuple(indices), power, alphabet)
            for (power, alphabet), indices in sorted(
                by_key.items(), key=lambda kv: kv[1][0]
            )
        ]
        self._block_of: List[int] = [0] * self.n_miners
        for b, (indices, _, _) in enumerate(self._blocks):
            for i in indices:
                self._block_of[i] = b
        self.has_symmetry: bool = any(len(indices) > 1 for indices, _, _ in self._blocks)
        self.symmetry = symmetry and self.has_symmetry
        self._block_choices: Optional[
            List[Tuple[Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...], int], ...]]
        ] = None

    # ------------------------------------------------------------------
    # Codes ↔ configurations
    # ------------------------------------------------------------------

    def encode(self, assign: Sequence[int]) -> int:
        """The base-``|C|`` code of a coin-index assignment."""
        place = self._place
        return sum(assign[i] * place[i] for i in range(self.n_miners))

    def decode(self, code: int) -> List[int]:
        """Coin index per miner for a configuration code."""
        k = self.n_coins
        assign = [0] * self.n_miners
        for i in range(self.n_miners - 1, -1, -1):
            code, assign[i] = divmod(code, k)
        return assign

    def code_of(self, config: Configuration) -> int:
        """The code of a :class:`Configuration` (game miner order)."""
        return self.encode(self.kernel.assignment_of(config))

    def config_of(self, code: int) -> Configuration:
        """Materialize the :class:`Configuration` behind a code."""
        coins = self.game.coins
        return Configuration(self.game.miners, [coins[j] for j in self.decode(code)])

    def mass_of(self, assign: Sequence[int]) -> List[int]:
        """Integer mass vector for an assignment (one O(n) pass)."""
        return self.kernel.mass_of(assign)

    def is_valid_assign(self, assign: Sequence[int]) -> bool:
        """Whether every miner sits on a coin its mask allows."""
        if self._allowed_sets is None:
            return True
        sets = self._allowed_sets
        return all(assign[i] in sets[i] for i in range(self.n_miners))

    def _require_valid(self, assign: Sequence[int]) -> None:
        # Same exception type as RestrictedGame.validate_configuration,
        # so space and exact backends fail identically on bad starts.
        if self._allowed_sets is None:
            return
        for i, j in enumerate(assign):
            if j not in self._allowed_sets[i]:
                raise InvalidConfigurationError(
                    f"miner {self.kernel.miner_names[i]!r} sits on coin "
                    f"{self.kernel.coin_names[j]!r} which its mask does not allow"
                )

    # ------------------------------------------------------------------
    # Walks (in-place state; copy before keeping)
    # ------------------------------------------------------------------

    def iter_gray(self) -> Iterator[Tuple[int, List[int], List[int]]]:
        """Walk all (mask-valid) codes in reflected mixed-radix Gray order.

        Exactly one miner changes coin between consecutive nodes, so
        ``mass`` and ``code`` update in O(1) per step. Under a mask each
        miner's digit runs over its own alphabet of allowed coin
        indices (per-miner radices); the Gray walk operates on digit
        *positions*, so one ±1 digit step is still one coin change.
        Yields ``(code, assign, mass)`` with *shared mutable* lists.
        """
        if self._allowed_idx is not None:
            yield from self._iter_gray_masked()
            return
        n, k = self.n_miners, self.n_coins
        powers = self.kernel.powers
        place = self._place
        assign = [0] * n
        mass = [0] * k
        mass[0] = sum(powers)
        code = 0
        if k == 1:
            yield code, assign, mass
            return
        # Knuth TAOCP 7.2.1.1, Algorithm H (loopless reflected mixed-radix
        # Gray code), specialized to a uniform radix k.
        focus = list(range(n + 1))
        direction = [1] * n
        while True:
            yield code, assign, mass
            j = focus[0]
            focus[0] = 0
            if j == n:
                return
            old = assign[j]
            new = old + direction[j]
            assign[j] = new
            power = powers[j]
            mass[old] -= power
            mass[new] += power
            code += (new - old) * place[j]
            if new == 0 or new == k - 1:
                direction[j] = -direction[j]
                focus[j] = focus[j + 1]
                focus[j + 1] = j + 1

    def _iter_gray_masked(self) -> Iterator[Tuple[int, List[int], List[int]]]:
        """Algorithm H over per-miner alphabets (mask-valid codes only).

        Digits with a single-coin alphabet never change, so the walk
        runs over the *active* miners only; digit positions map to coin
        indices through each miner's alphabet, keeping every update
        O(1).
        """
        n = self.n_miners
        powers = self.kernel.powers
        place = self._place
        alphabets = self._alphabets
        assign = [alphabet[0] for alphabet in alphabets]
        mass = [0] * self.n_coins
        for i, j in enumerate(assign):
            mass[j] += powers[i]
        code = sum(assign[i] * place[i] for i in range(n))
        active = [i for i in range(n) if len(alphabets[i]) > 1]
        if not active:
            yield code, assign, mass
            return
        m = len(active)
        digit = [0] * m
        direction = [1] * m
        focus = list(range(m + 1))
        while True:
            yield code, assign, mass
            t = focus[0]
            focus[0] = 0
            if t == m:
                return
            i = active[t]
            alphabet = alphabets[i]
            d = digit[t] + direction[t]
            digit[t] = d
            old = assign[i]
            new = alphabet[d]
            assign[i] = new
            power = powers[i]
            mass[old] -= power
            mass[new] += power
            code += (new - old) * place[i]
            if d == 0 or d == len(alphabet) - 1:
                direction[t] = -direction[t]
                focus[t] = focus[t + 1]
                focus[t + 1] = t + 1

    def iter_product(self) -> Iterator[Tuple[int, List[int], List[int]]]:
        """Walk all (mask-valid) codes in ascending (product) order.

        This is the seed's scan order: ascending code order equals
        lexicographic order on assignments, and — because alphabets are
        ascending coin indices — equals the product order over
        per-miner allowed sets for restricted games. The odometer
        changes amortized O(1) digits per step, so ``mass`` is still
        maintained incrementally. Yields shared mutable lists.
        """
        if self._allowed_idx is not None:
            yield from self._iter_product_masked()
            return
        n, k = self.n_miners, self.n_coins
        powers = self.kernel.powers
        place = self._place
        assign = [0] * n
        mass = [0] * k
        mass[0] = sum(powers)
        code = 0
        last = k - 1
        while True:
            yield code, assign, mass
            i = n - 1
            while i >= 0 and assign[i] == last:
                power = powers[i]
                mass[last] -= power
                mass[0] += power
                code -= last * place[i]
                assign[i] = 0
                i -= 1
            if i < 0:
                return
            old = assign[i]
            assign[i] = old + 1
            power = powers[i]
            mass[old] -= power
            mass[old + 1] += power
            code += place[i]

    def _iter_product_masked(self) -> Iterator[Tuple[int, List[int], List[int]]]:
        """The odometer over per-miner alphabets (digit → alphabet coin)."""
        n = self.n_miners
        powers = self.kernel.powers
        place = self._place
        alphabets = self._alphabets
        digit = [0] * n
        assign = [alphabet[0] for alphabet in alphabets]
        mass = [0] * self.n_coins
        for i, j in enumerate(assign):
            mass[j] += powers[i]
        code = sum(assign[i] * place[i] for i in range(n))
        while True:
            yield code, assign, mass
            i = n - 1
            while i >= 0 and digit[i] == len(alphabets[i]) - 1:
                old = assign[i]
                new = alphabets[i][0]
                power = powers[i]
                mass[old] -= power
                mass[new] += power
                code += (new - old) * place[i]
                assign[i] = new
                digit[i] = 0
                i -= 1
            if i < 0:
                return
            d = digit[i] + 1
            old = assign[i]
            new = alphabets[i][d]
            digit[i] = d
            assign[i] = new
            power = powers[i]
            mass[old] -= power
            mass[new] += power
            code += (new - old) * place[i]

    # ------------------------------------------------------------------
    # Symmetry: canonical orbit representatives
    # ------------------------------------------------------------------

    def orbit_count(self) -> int:
        """Number of canonical representatives under (power, mask) symmetry."""
        total = 1
        for indices, _, alphabet in self._blocks:
            m = len(alphabet)
            total *= comb(len(indices) + m - 1, m - 1)
        return total

    def _choices(
        self,
    ) -> List[Tuple[Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...], int], ...]]:
        """Per block: the :func:`_block_choice_table` for (size, alphabet).

        Tables are keyed on (block size, alphabet) in a module-level
        cache shared across instances; this method only assembles the
        per-block list once per space.
        """
        if self._block_choices is None:
            self._block_choices = [
                _block_choice_table(len(indices), alphabet)
                for indices, _, alphabet in self._blocks
            ]
        return self._block_choices

    def iter_canonical(self) -> Iterator[Tuple[List[int], List[int], int]]:
        """Walk one canonical representative per symmetry orbit.

        Canonical means coin indices are non-decreasing along each
        equal-power-equal-mask block (in miner order); every block
        member shares the block's alphabet, so every orbit member is
        mask-valid. Yields ``(assign, mass, orbit_size)`` with shared
        mutable ``assign``/``mass``; the mass is maintained
        incrementally per block choice.
        """
        blocks = self._blocks
        choices = self._choices()
        n_blocks = len(blocks)
        assign = [0] * self.n_miners
        mass = [0] * self.n_coins

        def rec(b: int, mult: int) -> Iterator[Tuple[List[int], List[int], int]]:
            if b == n_blocks:
                yield assign, mass, mult
                return
            indices, power, _ = blocks[b]
            for combo, counts, m in choices[b]:
                for pos, j in zip(indices, combo):
                    assign[pos] = j
                for j, c in counts:
                    mass[j] += c * power
                yield from rec(b + 1, mult * m)
                for j, c in counts:
                    mass[j] -= c * power

        yield from rec(0, 1)

    def canonical_code(self, assign: Sequence[int]) -> int:
        """The code of the canonical representative of ``assign``'s orbit."""
        place = self._place
        code = 0
        for indices, _, _ in self._blocks:
            values = sorted(assign[i] for i in indices)
            for pos, value in zip(indices, values):
                code += value * place[pos]
        return code

    def orbit_codes(self, assign: Sequence[int]) -> List[int]:
        """All full-space codes in the symmetry orbit of ``assign``."""
        place = self._place
        per_block: List[List[int]] = []
        for indices, _, _ in self._blocks:
            values = sorted(assign[i] for i in indices)
            block_codes = [
                sum(value * place[pos] for pos, value in zip(indices, perm))
                for perm in _distinct_permutations(values)
            ]
            per_block.append(block_codes)
        return [sum(parts) for parts in itertools.product(*per_block)]

    # ------------------------------------------------------------------
    # Stability and successors (index level)
    # ------------------------------------------------------------------

    def is_stable_state(self, assign: Sequence[int], mass: Sequence[int]) -> bool:
        """Early-exit (restricted) stability of an (assign, mass) state.

        Delegates to :meth:`KernelGame.stable_index`, the single home
        of the stability cross-multiplication, passing the mask's
        candidate lists (``None`` when unrestricted).
        """
        return self.kernel.stable_index(assign, mass, self._allowed_idx)

    def successor_codes(
        self, code: int, assign: Sequence[int], mass: Sequence[int]
    ) -> List[int]:
        """Better-response successor codes (miners outer, coins inner —
        the seed's :func:`~repro.analysis.paths.improvement_graph` edge
        order). Under a mask only each miner's allowed coins are
        candidates, so successors of a valid code are always valid."""
        rewards = self.kernel.rewards
        powers = self.kernel.powers
        place = self._place
        alphabets = self._alphabets
        result: List[int] = []
        for i in range(self.n_miners):
            cur = assign[i]
            reward_cur = rewards[cur]
            mass_cur = mass[cur]
            power = powers[i]
            base = code - cur * place[i]
            for j in alphabets[i]:
                if j != cur and rewards[j] * mass_cur > reward_cur * (mass[j] + power):
                    result.append(base + j * place[i])
        return result

    def successors(self, code: int) -> List[int]:
        """Successor codes of an arbitrary code (decodes first; a
        mask-invalid code raises :class:`InvalidModelError`)."""
        assign = self.decode(code)
        self._require_valid(assign)
        return self.successor_codes(code, assign, self.kernel.mass_of(assign))

    # ------------------------------------------------------------------
    # Equilibria
    # ------------------------------------------------------------------

    def stable_codes(self, *, max_codes: Optional[int] = None) -> List[int]:
        """Codes of all pure (restricted) equilibria, ascending.

        With symmetry reduction only canonical representatives are
        stability-checked; stable orbits are then expanded to all their
        member codes, so the result is identical to a full scan.
        ``max_codes`` caps the *expanded* result size — large symmetric
        games can have few orbits but combinatorially many equilibria,
        and the cap turns that into :class:`InvalidModelError` instead
        of an unbounded expansion.
        """
        if self.symmetry:
            codes: List[int] = []
            expanded = 0
            for assign, mass, multiplicity in self.iter_canonical():
                if self.is_stable_state(assign, mass):
                    expanded += multiplicity
                    if max_codes is not None and expanded > max_codes:
                        raise InvalidModelError(
                            f"symmetry orbits expand to more than {max_codes} "
                            "equilibria, above the scan limit"
                        )
                    codes.extend(self.orbit_codes(assign))
            codes.sort()
        else:
            codes = [
                code
                for code, assign, mass in self.iter_gray()
                if self.is_stable_state(assign, mass)
            ]
            codes.sort()
        recorder = get_recorder()
        if recorder.enabled:
            # The symmetric path stability-checks one node per orbit.
            visited = self.orbit_count() if self.symmetry else self.size
            recorder.count("space.scans")
            recorder.count("space.codes_visited", visited)
            recorder.count("space.equilibria", len(codes))
            recorder.event(
                "space.scan",
                visited=visited,
                total=self.size,
                equilibria=len(codes),
                symmetry=self.symmetry,
            )
        return codes

    def equilibria(self, *, max_codes: Optional[int] = None) -> List[Configuration]:
        """All pure (restricted) equilibria, in the seed's enumeration order."""
        return [self.config_of(code) for code in self.stable_codes(max_codes=max_codes)]

    def iter_equilibria(self) -> Iterator[Configuration]:
        """Lazily yield equilibria in the seed's product order."""
        for code, assign, mass in self.iter_product():
            if self.is_stable_state(assign, mass):
                yield self.config_of(code)

    # ------------------------------------------------------------------
    # Improvement-DAG analysis (Theorem 1)
    # ------------------------------------------------------------------

    def dag_report(
        self,
        *,
        symmetry: Optional[bool] = None,
        max_sinks: Optional[int] = None,
    ) -> DagReport:
        """Acyclicity, exact longest improving path, and all sinks.

        With symmetry the analysis runs on the orbit quotient graph
        (successors canonicalized), which is acyclic iff the full graph
        is and has the same longest-path length — better-response
        structure is invariant under permuting miners with equal power
        *and* equal allowed set. ``max_sinks`` caps the orbit-expanded
        sink list (see :meth:`stable_codes`).
        """
        use_symmetry = self.symmetry if symmetry is None else (symmetry and self.has_symmetry)
        if use_symmetry:
            result = self._dag_quotient(max_sinks=max_sinks)
        else:
            result = self._dag_full()
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("space.scans")
            recorder.count("space.codes_visited", result.nodes_scanned)
            recorder.event(
                "space.dag",
                nodes_scanned=result.nodes_scanned,
                total=result.total_configurations,
                sinks=len(result.sink_codes),
                acyclic=result.acyclic,
                symmetry=result.symmetry_reduced,
            )
        return result

    def _dag_full(self) -> DagReport:
        if self._allowed_idx is not None:
            return self._dag_full_masked()
        total = self.size
        succ: List[Sequence[int]] = [()] * total
        for code, assign, mass in self.iter_gray():
            edges = self.successor_codes(code, assign, mass)
            if edges:
                succ[code] = edges
        acyclic, longest = _longest_path_over(succ)
        sinks = tuple(code for code in range(total) if not succ[code])
        return DagReport(
            acyclic=acyclic,
            longest_path=longest,
            sink_codes=sinks,
            nodes_scanned=total,
            total_configurations=total,
            symmetry_reduced=False,
        )

    def _dag_full_masked(self) -> DagReport:
        # Valid codes are sparse in the full code range, so the flat
        # code-indexed successor array of the unmasked path does not
        # apply; rank nodes densely in product (= ascending code) order
        # instead, which also makes sinks come out pre-sorted.
        codes: List[int] = []
        edge_lists: List[List[int]] = []
        for code, assign, mass in self.iter_product():
            codes.append(code)
            edge_lists.append(self.successor_codes(code, assign, mass))
        index = {code: rank for rank, code in enumerate(codes)}
        succ: List[Sequence[int]] = [
            tuple(index[child] for child in edges) if edges else ()
            for edges in edge_lists
        ]
        acyclic, longest = _longest_path_over(succ)
        sinks = tuple(codes[rank] for rank in range(len(codes)) if not succ[rank])
        return DagReport(
            acyclic=acyclic,
            longest_path=longest,
            sink_codes=sinks,
            nodes_scanned=len(codes),
            total_configurations=self.size,
            symmetry_reduced=False,
        )

    def _dag_quotient(self, *, max_sinks: Optional[int] = None) -> DagReport:
        place = self._place
        block_of = self._block_of
        blocks = self._blocks
        rewards = self.kernel.rewards
        powers = self.kernel.powers
        alphabets = self._alphabets
        index: Dict[int, int] = {}
        for assign, _, _ in self.iter_canonical():
            index[self.encode(assign)] = len(index)
        succ: List[Sequence[int]] = [()] * len(index)
        sink_codes: List[int] = []
        expanded_sinks = 0
        node = 0
        for assign, mass, multiplicity in self.iter_canonical():
            code = self.encode(assign)
            edges: List[int] = []
            for i in range(self.n_miners):
                cur = assign[i]
                reward_cur = rewards[cur]
                mass_cur = mass[cur]
                power = powers[i]
                for j in alphabets[i]:
                    if j == cur or rewards[j] * mass_cur <= reward_cur * (mass[j] + power):
                        continue
                    # Canonicalize the successor: only miner i's block
                    # loses its sorted order, so re-sort that block.
                    indices, _, _ = blocks[block_of[i]]
                    child = code
                    values = sorted(j if p == i else assign[p] for p in indices)
                    for pos, value in zip(indices, values):
                        child += (value - assign[pos]) * place[pos]
                    edges.append(index[child])
            if edges:
                succ[node] = edges
            else:
                expanded_sinks += multiplicity
                if max_sinks is not None and expanded_sinks > max_sinks:
                    raise InvalidModelError(
                        f"symmetry orbits expand to more than {max_sinks} "
                        "sinks, above the scan limit"
                    )
                sink_codes.extend(self.orbit_codes(assign))
            node += 1
        acyclic, longest = _longest_path_over(succ)
        sink_codes.sort()
        return DagReport(
            acyclic=acyclic,
            longest_path=longest,
            sink_codes=tuple(sink_codes),
            nodes_scanned=len(index),
            total_configurations=self.size,
            symmetry_reduced=True,
        )

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable_sink_codes(self, start: int) -> List[int]:
        """Sinks reachable from ``start``, in the seed's discovery order.

        Mirrors the seed's DFS (LIFO frontier, successors pushed in
        miner-then-coin order, sinks appended as popped) so results —
        including list order — are identical to the Fraction path. A
        mask-invalid ``start`` raises :class:`InvalidModelError`.
        """
        kernel = self.kernel
        self._require_valid(self.decode(start))
        frontier = [start]
        seen = {start}
        sinks: List[int] = []
        while frontier:
            code = frontier.pop()
            assign = self.decode(code)
            successors = self.successor_codes(code, assign, kernel.mass_of(assign))
            if not successors:
                sinks.append(code)
                continue
            for child in successors:
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("space.scans")
            recorder.count("space.codes_visited", len(seen))
            recorder.event(
                "space.reachable", start=start, visited=len(seen), sinks=len(sinks)
            )
        return sinks

    # ------------------------------------------------------------------
    # Exact-potential refuter (Proposition 1)
    # ------------------------------------------------------------------

    def four_cycle_witness(self) -> Optional[Tuple[int, int, int, int, int]]:
        """The first 4-cycle with nonzero defect, in the seed's scan order.

        Returns ``(start_code, miner_a, coin_a, miner_b, coin_b)`` or
        ``None`` when every 4-cycle of unilateral deviations closes
        (Monderer & Shapley's criterion: an exact potential exists).
        Under a mask only *legal* cycles are scanned — starts are
        mask-valid and each deviation stays within the deviator's
        allowed set. The defect's *zeroness* is scale-invariant, so the
        scan tests the integer-scaled sum ``Σ ± p·R/mass`` accumulated
        over one common denominator — no Fraction per cycle.
        """
        n, k = self.n_miners, self.n_coins
        if n < 2 or k < 2:
            return None
        rewards = self.kernel.rewards
        powers = self.kernel.powers
        alphabets = self._alphabets
        pairs = list(itertools.combinations(range(n), 2))
        recorder = get_recorder()
        observing = recorder.enabled
        scanned = 0
        for code, assign, mass in self.iter_product():
            if observing:
                scanned += 1
            for a, b in pairs:
                ca = assign[a]
                cb = assign[b]
                pa = powers[a]
                pb = powers[b]
                for ja in alphabets[a]:
                    if ja == ca:
                        continue
                    mass1 = list(mass)
                    mass1[ca] -= pa
                    mass1[ja] += pa
                    for jb in alphabets[b]:
                        if jb == cb:
                            continue
                        mass2 = list(mass1)
                        mass2[cb] -= pb
                        mass2[jb] += pb
                        mass3 = list(mass2)
                        mass3[ja] -= pa
                        mass3[ca] += pa
                        num = 0
                        den = 1
                        for value, d in (
                            (pa * rewards[ja], mass[ja] + pa),
                            (-pa * rewards[ca], mass[ca]),
                            (pb * rewards[jb], mass1[jb] + pb),
                            (-pb * rewards[cb], mass1[cb]),
                            (pa * rewards[ca], mass2[ca] + pa),
                            (-pa * rewards[ja], mass2[ja]),
                            (pb * rewards[cb], mass3[cb] + pb),
                            (-pb * rewards[jb], mass3[jb]),
                        ):
                            num = num * d + value * den
                            den *= d
                        if num != 0:
                            if observing:
                                recorder.count("space.scans")
                                recorder.count("space.codes_visited", scanned)
                                recorder.event(
                                    "space.four_cycle",
                                    visited=scanned,
                                    total=self.size,
                                    early_exit=True,
                                    witness_code=code,
                                )
                            return (code, a, ja, b, jb)
        if observing:
            recorder.count("space.scans")
            recorder.count("space.codes_visited", scanned)
            recorder.event(
                "space.four_cycle", visited=scanned, total=self.size, early_exit=False
            )
        return None

    def __repr__(self) -> str:
        return (
            f"ConfigSpace({self.game!r}, size={self.size}, "
            f"symmetry={'on' if self.symmetry else 'off'}, "
            f"mask={'on' if self.masked else 'off'})"
        )


def _longest_path_over(succ: Sequence[Sequence[int]]) -> Tuple[bool, Optional[int]]:
    """(acyclic, longest path) over a flat successor array, iteratively.

    One DFS pass fills the whole depth array (cycle detection via
    white/gray/black colors); the maximum is taken at the end — no
    per-node re-walk.
    """
    total = len(succ)
    color = bytearray(total)  # 0 white, 1 gray, 2 black
    depth = [0] * total
    for root in range(total):
        if color[root]:
            continue
        color[root] = 1
        stack: List[List[int]] = [[root, 0]]
        while stack:
            frame = stack[-1]
            node = frame[0]
            children = succ[node]
            if frame[1] < len(children):
                child = children[frame[1]]
                frame[1] += 1
                state = color[child]
                if state == 1:
                    return False, None
                if state == 0:
                    color[child] = 1
                    stack.append([child, 0])
            else:
                color[node] = 2
                best = 0
                for child in children:
                    d = depth[child] + 1
                    if d > best:
                        best = d
                depth[node] = best
                stack.pop()
    return True, max(depth) if total else 0
