"""Fast trajectory loops over :class:`~repro.kernel.core.KernelGame`.

These are drop-in twins of the Fraction-based loops in
:mod:`repro.learning.engine`, :mod:`repro.learning.restricted_engine`
and :mod:`repro.learning.simultaneous`: same iteration order, same
strict inequalities, same tie-breaks, and — crucially — the same RNG
draws in the same sequence. Given the same seed, a fast run returns a
:class:`~repro.learning.trajectory.Trajectory` equal step-for-step to
the exact run's (the parity suite asserts this on randomized games).

Only the standard policies and schedulers have kernel translations;
:func:`supports` reports whether a (policy, scheduler) pair does.
Custom subclasses fall back to the exact Fraction loop, so the
``backend="fast"`` default never changes semantics, only speed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.exceptions import ConvergenceError
from repro.kernel.core import KernelGame
from repro.learning.policies import (
    BestResponsePolicy,
    BetterResponsePolicy,
    EpsilonGreedyPolicy,
    FirstImprovingPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.schedulers import (
    ActivationScheduler,
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)
from repro.learning.trajectory import Step, Trajectory

#: Exact-type dispatch tables. Exact ``type() is`` matching on purpose:
#: a subclass may override ``choose``/``pick``, in which case only the
#: Fraction loop honors the override, so it must not take the fast path.
_POLICY_KINDS = {
    BestResponsePolicy: "best",
    RandomImprovingPolicy: "random",
    MinimalGainPolicy: "minimal",
    FirstImprovingPolicy: "first",
    MaxRpuPolicy: "max-rpu",
    EpsilonGreedyPolicy: "epsilon",
}

_SCHEDULER_KINDS = {
    UniformRandomScheduler: "uniform",
    RoundRobinScheduler: "round-robin",
    LargestFirstScheduler: "largest",
    SmallestFirstScheduler: "smallest",
}


def supports(policy: BetterResponsePolicy, scheduler: ActivationScheduler) -> bool:
    """Whether the kernel has exact translations for both strategies."""
    return type(policy) in _POLICY_KINDS and type(scheduler) in _SCHEDULER_KINDS


def _pick_index(
    kind: str,
    kernel: KernelGame,
    unstable: List[int],
    cursor: int,
    rng: np.random.Generator,
) -> Tuple[int, int]:
    """Kernel twin of ``scheduler.pick``: (miner index, new cursor)."""
    if kind == "uniform":
        return unstable[int(rng.integers(0, len(unstable)))], cursor
    if kind == "round-robin":
        members = set(unstable)
        n = kernel.n_miners
        for offset in range(n):
            candidate = (cursor + offset) % n
            if candidate in members:
                return candidate, (candidate + 1) % n
        raise AssertionError("pick() called with no unstable miner; engine bug")
    names = kernel.miner_names
    powers = kernel.powers
    best = unstable[0]
    if kind == "largest":
        for i in unstable[1:]:
            if powers[i] > powers[best] or (powers[i] == powers[best] and names[i] > names[best]):
                best = i
    else:  # smallest
        for i in unstable[1:]:
            if powers[i] < powers[best] or (powers[i] == powers[best] and names[i] < names[best]):
                best = i
    return best, cursor


def _choose_index(
    kind: str,
    epsilon: float,
    kernel: KernelGame,
    i: int,
    assign: List[int],
    mass: List[int],
    rng: np.random.Generator,
) -> Optional[int]:
    """Kernel twin of ``policy.choose``: an improving coin index or None."""
    if kind == "epsilon":
        kind = "random" if rng.random() < epsilon else "best"
    if kind == "best":
        return kernel.best_response_idx(i, assign, mass)
    moves = kernel.better_moves(i, assign, mass)
    if not moves:
        return None
    if kind == "random":
        return moves[int(rng.integers(0, len(moves)))]
    if kind == "first":
        return moves[0]
    if kind == "minimal":
        return kernel.minimal_gain_idx(i, moves, mass)
    if kind == "max-rpu":
        return kernel.max_rpu_idx(i, moves, mass)
    raise AssertionError(f"policy kind {kind!r} registered but not dispatched")


def run_fast(
    game: Game,
    initial: Configuration,
    *,
    policy: BetterResponsePolicy,
    scheduler: ActivationScheduler,
    rng: np.random.Generator,
    max_steps: int,
    record_configurations: bool,
    raise_on_budget: bool,
) -> Trajectory:
    """Integer fast path of :meth:`repro.learning.engine.LearningEngine.run`.

    Callers must have validated *initial* and checked :func:`supports`.
    """
    kernel = KernelGame(game)
    policy_kind = _POLICY_KINDS[type(policy)]
    scheduler_kind = _SCHEDULER_KINDS[type(scheduler)]
    epsilon = policy.epsilon if policy_kind == "epsilon" else 0.0
    scheduler.reset()

    miners = game.miners
    coins = game.coins
    powers = kernel.powers
    assign = kernel.assignment_of(initial)
    mass = kernel.mass_of(assign)
    # Choices aligned with the *initial* configuration's miner order so
    # materialized configurations compare equal to the exact backend's.
    slot_of: Dict[int, int] = {}
    initial_positions = {miner: pos for pos, miner in enumerate(initial.miners)}
    for i, miner in enumerate(miners):
        slot_of[i] = initial_positions[miner]
    choices = list(initial.choices)

    trajectory = Trajectory(configurations=[initial])
    cursor = 0
    for index in range(max_steps):
        unstable = kernel.unstable(assign, mass)
        if not unstable:
            trajectory.converged = True
            break
        i, cursor = _pick_index(scheduler_kind, kernel, unstable, cursor, rng)
        target = _choose_index(policy_kind, epsilon, kernel, i, assign, mass, rng)
        if target is None:
            raise ConvergenceError(
                f"scheduler activated miner {miners[i].name!r} but the policy "
                "found no improving move; scheduler/policy disagree on stability"
            )
        source = assign[i]
        before = kernel.payoff_fraction(i, source, mass[source])
        after = kernel.payoff_fraction(i, target, mass[target] + powers[i])
        if after <= before:
            raise ConvergenceError(
                f"policy {policy.name!r} returned a non-improving move for "
                f"{miners[i].name!r} ({before} → {after}); better-response contract violated"
            )
        assign[i] = target
        mass[source] -= powers[i]
        mass[target] += powers[i]
        choices[slot_of[i]] = coins[target]
        trajectory.steps.append(
            Step(
                index=index,
                miner=miners[i],
                source=coins[source],
                target=coins[target],
                payoff_before=before,
                payoff_after=after,
            )
        )
        if record_configurations:
            trajectory.configurations.append(Configuration(initial.miners, choices))
    else:
        # Budget exhausted: mirror the exact engine's final stability check.
        if not kernel.unstable(assign, mass):
            trajectory.converged = True
        elif raise_on_budget:
            raise ConvergenceError(
                f"better-response learning did not converge within {max_steps} steps"
            )

    if not record_configurations and trajectory.steps:
        trajectory.configurations.append(Configuration(initial.miners, choices))
    return trajectory


# ----------------------------------------------------------------------
# Restricted (asymmetric) games
# ----------------------------------------------------------------------


def run_restricted_fast(
    restricted,
    initial: Configuration,
    *,
    mode: str,
    rng: np.random.Generator,
    max_steps: int,
) -> Trajectory:
    """Integer fast path of :class:`RestrictedLearningEngine.run`.

    *restricted* is a :class:`repro.core.restricted.RestrictedGame`;
    imports are late/duck-typed to keep module dependencies one-way.
    """
    game = restricted.game
    kernel = KernelGame(game)
    miners = game.miners
    coins = game.coins
    powers = kernel.powers
    rewards = kernel.rewards
    allowed: List[Tuple[int, ...]] = [
        tuple(
            j
            for j in range(kernel.n_coins)
            if restricted.is_allowed(miner, coins[j])
        )
        for miner in miners
    ]

    assign = kernel.assignment_of(initial)
    mass = kernel.mass_of(assign)
    initial_positions = {miner: pos for pos, miner in enumerate(initial.miners)}
    slot_of = {i: initial_positions[miner] for i, miner in enumerate(miners)}
    choices = list(initial.choices)

    def legal_moves(i: int) -> List[int]:
        cur = assign[i]
        reward_cur = rewards[cur]
        mass_cur = mass[cur]
        power = powers[i]
        return [
            j
            for j in allowed[i]
            if j != cur and rewards[j] * mass_cur > reward_cur * (mass[j] + power)
        ]

    trajectory = Trajectory(configurations=[initial])
    for index in range(max_steps):
        unstable = [i for i in range(kernel.n_miners) if legal_moves(i)]
        if not unstable:
            trajectory.converged = True
            return trajectory
        i = unstable[int(rng.integers(0, len(unstable)))]
        moves = legal_moves(i)
        if mode == "random":
            target = moves[int(rng.integers(0, len(moves)))]
        elif mode == "best":
            # max by (post-move payoff, name) — the same ordering as the
            # max-RPU selection, since payoff = power · RPU.
            target = kernel.max_rpu_idx(i, moves, mass)
        else:  # minimal
            target = kernel.minimal_gain_idx(i, moves, mass)
        source = assign[i]
        before = kernel.payoff_fraction(i, source, mass[source])
        after = kernel.payoff_fraction(i, target, mass[target] + powers[i])
        if after <= before:
            raise ConvergenceError("restricted engine produced a non-improving step; bug")
        assign[i] = target
        mass[source] -= powers[i]
        mass[target] += powers[i]
        choices[slot_of[i]] = coins[target]
        trajectory.steps.append(
            Step(
                index=index,
                miner=miners[i],
                source=coins[source],
                target=coins[target],
                payoff_before=before,
                payoff_after=after,
            )
        )
        trajectory.configurations.append(Configuration(initial.miners, choices))
    if not any(legal_moves(i) for i in range(kernel.n_miners)):
        trajectory.converged = True
        return trajectory
    raise ConvergenceError(
        f"restricted learning did not converge within {max_steps} steps"
    )


__all__ = [
    "KernelGame",
    "run_fast",
    "run_restricted_fast",
    "supports",
]
