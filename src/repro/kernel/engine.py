"""The integer fast-path view over :class:`~repro.kernel.core.KernelGame`.

Before the strategy-view refactor this module held drop-in "twin"
trajectory loops for every dynamic (sequential, restricted,
simultaneous), hand-synchronized against the Fraction loops and gated
by an exact-type dispatch table — custom strategy subclasses silently
fell back to the slow exact path. All of that is gone: there is now one
trajectory loop (:func:`repro.learning.engine.run_better_response`),
written against the :class:`~repro.learning.view.GameView` protocol,
and this module only supplies the protocol's fast implementation.

:class:`KernelView` keeps the hot state as two plain integer lists —
a coin index per miner and an incrementally maintained integer mass per
coin (O(1) update per :meth:`~KernelView.apply`) — and answers every
evaluation query through :class:`KernelGame`'s integer
cross-multiplication. Decisions are bit-for-bit the Fraction core's,
so *any* policy or scheduler (standard or custom subclass) runs on the
fast backend with identical trajectories and RNG draws.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.core.restricted import normalize_mask
from repro.kernel.core import KernelGame
from repro.learning.view import GameView


class KernelView(GameView):
    """The ``backend="fast"`` implementation of :class:`GameView`.

    State
    -----
    ``assign``
        coin index per miner, aligned with ``game.miners`` order;
    ``mass``
        integer coin power per coin index (``M_c(s)`` kernel-scaled),
        maintained incrementally — never re-derived from the
        configuration.

    Both are exposed read-only-by-convention for index-level consumers
    (the noisy sampling engine reads masses straight off the view).
    Configurations are materialized lazily, aligned with the *initial*
    configuration's miner order so they compare equal to the exact
    backend's.
    """

    __slots__ = (
        "game",
        "kernel",
        "assign",
        "mass",
        "_allowed_idx",
        "_slot_of",
        "_choices",
        "_config_miners",
        "_config",
    )

    def __init__(
        self,
        game: Game,
        initial: Configuration,
        *,
        allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
        kernel: Optional[KernelGame] = None,
    ):
        self.game = game
        self.kernel = kernel if kernel is not None else KernelGame(game)
        self.assign: List[int] = self.kernel.assignment_of(initial)
        self.mass: List[int] = self.kernel.mass_of(self.assign)
        mask = normalize_mask(game, allowed)
        if mask is None:
            self._allowed_idx: Optional[Tuple[Tuple[int, ...], ...]] = None
        else:
            coin_index = self.kernel.coin_index
            self._allowed_idx = tuple(
                tuple(coin_index[coin] for coin in mask[miner]) for miner in game.miners
            )
        # Choice slots aligned with the *initial* configuration's miner
        # order so materialized configurations compare equal to the
        # exact backend's (Configuration equality is order-strict).
        positions = {miner: pos for pos, miner in enumerate(initial.miners)}
        self._slot_of: Dict[int, int] = {
            i: positions[miner] for i, miner in enumerate(game.miners)
        }
        self._choices: List[Coin] = list(initial.choices)
        self._config_miners: Tuple[Miner, ...] = initial.miners
        self._config: Optional[Configuration] = initial

    # -- structure -----------------------------------------------------

    def allowed_coins(self, miner: Miner) -> Tuple[Coin, ...]:
        if self._allowed_idx is None:
            return self.game.coins
        coins = self.game.coins
        return tuple(coins[j] for j in self._allowed_idx[self.kernel.miner_index[miner]])

    def coin_of(self, miner: Miner) -> Coin:
        return self.game.coins[self.assign[self.kernel.miner_index[miner]]]

    def _within(self, i: int) -> Optional[Tuple[int, ...]]:
        return None if self._allowed_idx is None else self._allowed_idx[i]

    # -- evaluation ----------------------------------------------------

    def payoff(self, miner: Miner) -> Fraction:
        i = self.kernel.miner_index[miner]
        j = self.assign[i]
        return self.kernel.payoff_fraction(i, j, self.mass[j])

    def payoff_after_move(self, miner: Miner, coin: Coin) -> Fraction:
        i = self.kernel.miner_index[miner]
        j = self.kernel.coin_index[coin]
        if j == self.assign[i]:
            return self.kernel.payoff_fraction(i, j, self.mass[j])
        return self.kernel.payoff_fraction(i, j, self.mass[j] + self.kernel.powers[i])

    def improving_moves(self, miner: Miner) -> Tuple[Coin, ...]:
        i = self.kernel.miner_index[miner]
        coins = self.game.coins
        moves = self.kernel.better_moves(i, self.assign, self.mass, self._within(i))
        return tuple(coins[j] for j in moves)

    def best_response(self, miner: Miner) -> Optional[Coin]:
        i = self.kernel.miner_index[miner]
        j = self.kernel.best_response_idx(i, self.assign, self.mass, self._within(i))
        return None if j is None else self.game.coins[j]

    def unstable_miners(self) -> Tuple[Miner, ...]:
        miners = self.game.miners
        unstable = self.kernel.unstable(self.assign, self.mass, self._allowed_idx)
        return tuple(miners[i] for i in unstable)

    def is_stable(self) -> bool:
        return self.kernel.stable_index(self.assign, self.mass, self._allowed_idx)

    # -- selection helpers ---------------------------------------------

    def minimal_gain_move(self, miner: Miner, moves: Sequence[Coin]) -> Coin:
        i = self.kernel.miner_index[miner]
        coin_index = self.kernel.coin_index
        j = self.kernel.minimal_gain_idx(
            i, [coin_index[c] for c in moves], self.mass, self.assign[i]
        )
        return self.game.coins[j]

    def max_rpu_move(self, miner: Miner, moves: Sequence[Coin]) -> Coin:
        i = self.kernel.miner_index[miner]
        coin_index = self.kernel.coin_index
        j = self.kernel.max_rpu_idx(
            i, [coin_index[c] for c in moves], self.mass, self.assign[i]
        )
        return self.game.coins[j]

    # -- state ---------------------------------------------------------

    def apply(self, miner: Miner, coin: Coin) -> None:
        self.apply_index(self.kernel.miner_index[miner], self.kernel.coin_index[coin])

    def apply_index(self, i: int, j: int) -> None:
        """Index-level :meth:`apply` — the O(1) hot-path entry point."""
        power = self.kernel.powers[i]
        self.mass[self.assign[i]] -= power
        self.mass[j] += power
        self.assign[i] = j
        self._choices[self._slot_of[i]] = self.game.coins[j]
        self._config = None

    def configuration(self) -> Configuration:
        if self._config is None:
            self._config = Configuration(self._config_miners, self._choices)
        return self._config

    def __repr__(self) -> str:
        return f"KernelView({self.game!r})"


__all__ = ["KernelGame", "KernelView"]
