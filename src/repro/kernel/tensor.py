"""Tensor-batched trajectory kernel: whole populations per numpy step.

Every multi-seed experiment runs many independent trajectories over
same-shape games. The scalar :class:`~repro.kernel.engine.KernelView`
stepper advances them one Python step at a time; this module packs a
*population* into ``(games × miners)`` / ``(games × coins)`` int64
arrays — per-game common-denominator-scaled powers and rewards (the
:class:`~repro.kernel.core.KernelGame` normalization, reused as-is),
an assignment matrix and per-coin mass vectors — and advances every
live trajectory in lockstep: one batched better-response scan, one
batched scheduler pick, one batched policy choice and one batched
apply per step. Converged (or budget-exhausted) games retire from the
arrays; the loop ends when the population is empty.

Exactness — three lanes, mirroring ``stochastic/lottery.py``'s
int64-with-exact-fallback pattern:

``"int"``
    Every cross-multiplication fits int64 (bound:
    ``max_reward · (total_power + max_power) < 2**62``). Comparisons
    run directly on int64 arrays — exact by construction.
``"float"``
    Products would overflow int64 but the *state* (masses, rewards)
    still fits. Comparisons run as bracketed float screens: the hot
    lockstep tensors are float32 with a wide ``1e-5`` relative bracket
    (accumulated float32 error is ≤ ~3e-7, so a certain verdict is
    always right), entries inside that bracket re-run through a
    float64 screen with a ``1e-14`` bracket (float64 error is
    ~1e-16·ops), and anything still undecided — generically nothing —
    is settled with arbitrary-precision Python integers. Final verdicts
    are therefore exact regardless of which tier decided them.
``"exact"``
    State itself exceeds int64: the whole game falls back to the scalar
    :class:`~repro.kernel.engine.KernelView` stepper in
    ``record="summary"`` mode — same draws, same tie-breaks, same
    budget semantics, merely not batched.

All three lanes are draw-for-draw identical to the scalar stepper:
each job carries its own ``numpy.random.Generator``, and every draw the
scalar loop would make (scheduler pick, random-improving choice,
epsilon-greedy explore test) is made on that same generator, in the
same per-step order, with the same bounds. Tie-breaks replicate the
scalar scan order exactly (ascending coin index for best response,
coin-name order for minimal-gain/max-rpu, power-then-name order for the
largest/smallest-first schedulers). ``tests/test_tensor_parity.py``
holds the wall.

Restricted games ride along: a job's ``allowed`` mask (per-miner
ascending coin indices, the :class:`~repro.kernel.engine.KernelView`
``_allowed_idx`` shape) becomes one boolean ``(games × miners × coins)``
tensor AND-ed into the improvement scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConvergenceError
from repro.kernel.core import KernelGame
from repro.obs.recorder import get_recorder

__all__ = [
    "TrajectoryJob",
    "TrajectoryOutcome",
    "SimultaneousJob",
    "SimultaneousOutcome",
    "kernel_lane",
    "policy_kind",
    "scheduler_kind",
    "run_trajectory_population",
    "run_simultaneous_population",
    "stable_mask",
]

#: Largest integer the int64 fast paths may produce (see lottery.py).
_INT64_SAFE = 2**62

#: Relative tolerance of the float64 comparison lane. Anything closer
#: than this is re-resolved with exact integer arithmetic.
_REL_TOL = 1e-14
_REL_TOL_F32 = 1e-5
_LO_F32 = np.float32(1.0 - _REL_TOL_F32)

#: Policy kind codes the batched stepper implements.
VECTOR_POLICIES = ("best", "random", "minimal", "max-rpu", "first", "epsilon")

#: Scheduler kind codes the batched stepper implements.
VECTOR_SCHEDULERS = ("uniform", "round-robin", "largest", "smallest")


def kernel_lane(kernel: KernelGame) -> str:
    """Which comparison lane a kernel's integer magnitudes admit.

    ``"int"`` — int64 products; ``"float"`` — float64 prefilter with
    exact confirmation; ``"exact"`` — scalar arbitrary-precision
    fallback (state itself does not fit int64).
    """
    total = sum(kernel.powers)
    peak = max(kernel.powers)
    top = max(kernel.rewards)
    if top * (total + peak) < _INT64_SAFE:
        return "int"
    if total + peak < _INT64_SAFE and top < _INT64_SAFE:
        return "float"
    return "exact"


def policy_kind(policy) -> Optional[Tuple[str, float]]:
    """``(kind, epsilon)`` code for a *standard* policy instance, else None.

    Exact type checks on purpose: a subclass may override ``choose`` and
    must fall back to the scalar loop (same rule the strategy views use
    for their own fast paths).
    """
    from repro.learning import policies as P

    if policy is None:
        return ("random", 0.0)
    t = type(policy)
    if t is P.BestResponsePolicy:
        return ("best", 0.0)
    if t is P.RandomImprovingPolicy:
        return ("random", 0.0)
    if t is P.MinimalGainPolicy:
        return ("minimal", 0.0)
    if t is P.MaxRpuPolicy:
        return ("max-rpu", 0.0)
    if t is P.FirstImprovingPolicy:
        return ("first", 0.0)
    if t is P.EpsilonGreedyPolicy:
        return ("epsilon", float(policy.epsilon))
    return None


def scheduler_kind(scheduler) -> Optional[str]:
    """Kind code for a *standard* scheduler instance, else None."""
    from repro.learning import schedulers as S

    if scheduler is None:
        return "uniform"
    t = type(scheduler)
    if t is S.UniformRandomScheduler:
        return "uniform"
    if t is S.RoundRobinScheduler:
        return "round-robin"
    if t is S.LargestFirstScheduler:
        return "largest"
    if t is S.SmallestFirstScheduler:
        return "smallest"
    return None


def _make_policy(kind: str, epsilon: float):
    from repro.learning import policies as P

    factory = {
        "best": P.BestResponsePolicy,
        "random": P.RandomImprovingPolicy,
        "minimal": P.MinimalGainPolicy,
        "max-rpu": P.MaxRpuPolicy,
        "first": P.FirstImprovingPolicy,
    }
    if kind == "epsilon":
        return P.EpsilonGreedyPolicy(epsilon)
    return factory[kind]()


def _make_scheduler(kind: str):
    from repro.learning import schedulers as S

    return {
        "uniform": S.UniformRandomScheduler,
        "round-robin": S.RoundRobinScheduler,
        "largest": S.LargestFirstScheduler,
        "smallest": S.SmallestFirstScheduler,
    }[kind]()


# ----------------------------------------------------------------------
# Sequential better-response populations
# ----------------------------------------------------------------------


@dataclass
class TrajectoryJob:
    """One trajectory of the population: a game plus its run state.

    ``assign`` is the initial assignment (coin index per miner, miner
    order); ``rng`` is this run's private generator — the batched
    stepper draws from it exactly as the scalar stepper would.
    ``policy``/``scheduler`` are kind codes (:data:`VECTOR_POLICIES` /
    :data:`VECTOR_SCHEDULERS`); map strategy *objects* with
    :func:`policy_kind` / :func:`scheduler_kind`. ``allowed`` is the
    per-miner ascending coin-index mask of a restricted game, or None.
    """

    kernel: KernelGame
    assign: Sequence[int]
    rng: np.random.Generator
    policy: str = "random"
    scheduler: str = "uniform"
    epsilon: float = 0.0
    allowed: Optional[Tuple[Tuple[int, ...], ...]] = None
    max_steps: int = 1_000_000
    raise_on_budget: bool = True


@dataclass(frozen=True)
class TrajectoryOutcome:
    """What the batched stepper reports per job: counts and final state."""

    steps: int
    converged: bool
    final_assign: Tuple[int, ...]


def run_trajectory_population(jobs: Sequence[TrajectoryJob]) -> List[TrajectoryOutcome]:
    """Advance every job to convergence (or budget), batched per shape.

    Jobs are grouped into buckets of identical ``(miners, coins,
    policy, scheduler, epsilon, lane)``; each bucket runs as one
    lockstep array program. Mixed-shape populations are therefore fine —
    they simply occupy several buckets. Jobs whose kernel integers
    exceed the ``"float"`` lane run through the scalar stepper
    (arbitrary precision), transparently. Outcomes come back in job
    order.
    """
    jobs = list(jobs)
    outcomes: List[Optional[TrajectoryOutcome]] = [None] * len(jobs)
    lanes: Dict[int, str] = {}
    buckets: Dict[tuple, List[int]] = {}
    recorder = get_recorder()
    observing = recorder.enabled
    for pos, job in enumerate(jobs):
        if job.policy not in VECTOR_POLICIES:
            raise ValueError(f"policy must be one of {VECTOR_POLICIES}, got {job.policy!r}")
        if job.scheduler not in VECTOR_SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {VECTOR_SCHEDULERS}, got {job.scheduler!r}"
            )
        lane = lanes.get(id(job.kernel))
        if lane is None:
            lane = lanes[id(job.kernel)] = kernel_lane(job.kernel)
        if observing:
            recorder.count("tensor.lane." + lane)
        if lane == "exact":
            outcomes[pos] = _run_scalar_job(job)
            continue
        key = (
            job.kernel.n_miners,
            job.kernel.n_coins,
            job.policy,
            job.scheduler,
            job.epsilon,
            lane,
        )
        buckets.setdefault(key, []).append(pos)
    for key, positions in buckets.items():
        if observing:
            recorder.count("tensor.buckets")
            recorder.event(
                "tensor.bucket",
                miners=key[0],
                coins=key[1],
                policy=key[2],
                scheduler=key[3],
                lane=key[-1],
                jobs=len(positions),
            )
        results = _run_bucket([jobs[p] for p in positions], lane=key[-1])
        for p, outcome in zip(positions, results):
            outcomes[p] = outcome
    return outcomes  # type: ignore[return-value]


def _run_scalar_job(job: TrajectoryJob) -> TrajectoryOutcome:
    """Arbitrary-precision fallback: the scalar stepper, summary mode."""
    from repro.core.configuration import Configuration
    from repro.kernel.engine import KernelView
    from repro.learning.engine import run_better_response

    game = job.kernel.game
    coins = game.coins
    config = Configuration(game.miners, [coins[int(j)] for j in job.assign])
    allowed = None
    if job.allowed is not None:
        allowed = {
            miner: tuple(coins[j] for j in job.allowed[i])
            for i, miner in enumerate(game.miners)
        }
    view = KernelView(game, config, allowed=allowed, kernel=job.kernel)
    trajectory = run_better_response(
        view,
        _make_policy(job.policy, job.epsilon),
        _make_scheduler(job.scheduler),
        job.rng,
        max_steps=job.max_steps,
        raise_on_budget=job.raise_on_budget,
        record="summary",
    )
    final = tuple(int(j) for j in view.assign)
    return TrajectoryOutcome(trajectory.length, trajectory.converged, final)


def _activation_priorities(jobs: Sequence, kind: str) -> np.ndarray:
    """Per-game miner ranks replicating largest/smallest-first picks.

    ``max(unstable, key=(power, name))`` returns the *first* maximal
    element; a stable (reverse-)sort keeps equal keys in ascending miner
    order, so rank-argmin over the unstable set reproduces the scalar
    pick, ties included.
    """
    n = jobs[0].kernel.n_miners
    cache: Dict[int, np.ndarray] = {}
    out = np.empty((len(jobs), n), dtype=np.int64)
    for g, job in enumerate(jobs):
        row = cache.get(id(job.kernel))
        if row is None:
            miners = job.kernel.game.miners
            order = sorted(
                range(n),
                key=lambda i: (miners[i].power, miners[i].name),
                reverse=(kind == "largest"),
            )
            row = np.empty(n, dtype=np.int64)
            for rank, i in enumerate(order):
                row[i] = rank
            cache[id(job.kernel)] = row
        out[g] = row
    return out


def _coin_name_ranks(jobs: Sequence) -> np.ndarray:
    """Per-game coin ranks in name order (minimal-gain/max-rpu ties)."""
    k = jobs[0].kernel.n_coins
    cache: Dict[int, np.ndarray] = {}
    out = np.empty((len(jobs), k), dtype=np.int64)
    for g, job in enumerate(jobs):
        row = cache.get(id(job.kernel))
        if row is None:
            names = job.kernel.coin_names
            order = sorted(range(k), key=lambda j: names[j])
            row = np.empty(k, dtype=np.int64)
            for rank, j in enumerate(order):
                row[j] = rank
            cache[id(job.kernel)] = row
        out[g] = row
    return out


def _exact_improves(powers, rewards, assign, mass, allowed_m, gi, i, j):
    """Exact integer verdict: does miner *i* of game *gi* gain at coin *j*?

    The rare fallback for entries whose float margin lands inside the
    tolerance gap — the same strict cross-multiplication as
    :meth:`KernelGame.better_moves`, in arbitrary precision.
    """
    cur = int(assign[gi, i])
    if j == cur:
        return False
    if allowed_m is not None and not allowed_m[gi, i, j]:
        return False
    mc = int(mass[gi, cur])
    rc = int(rewards[gi, cur])
    return int(rewards[gi, j]) * mc > rc * (int(mass[gi, j]) + int(powers[gi, i]))


def _f64_margin_rows(powers, rewards, assign, mass, allowed_m, gis, iis):
    """True improving rows for (game, miner) pairs via the float64 bracket.

    Mid-tier resolver for pairs whose float32 margin landed inside the
    wide f32 gap: recompute their margin rows with the tight float64
    bracket in one vectorized pass, then settle any entry still inside
    the f64 gap — generically none — with exact integer arithmetic.
    The returned rows are truth, not an approximation.
    """
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("tensor.escalations.f64", len(gis))
    cur = assign[gis, iis]
    mc = mass[gis, cur].astype(np.float64)
    rc = rewards[gis, cur].astype(np.float64)
    q_lo = (mc / rc) * (1.0 - _REL_TOL)
    A = q_lo[:, None] * rewards[gis].astype(np.float64)
    A -= mass[gis]
    p = powers[gis, iis].astype(np.float64)
    slack = 2.0 * _REL_TOL * (mass[gis].sum(axis=1) + powers[gis].max(axis=1)).astype(np.float64)
    imp = A > p[:, None]
    gap = (A > (p - slack)[:, None]) ^ imp
    if allowed_m is not None:
        dis = ~allowed_m[gis, iis]
        imp &= ~dis
        gap &= ~dis
    gap_count = int(np.count_nonzero(gap))
    if gap_count:
        recorder.count("tensor.escalations.exact", gap_count)
        for ri, j in zip(*np.nonzero(gap)):
            imp[ri, j] = _exact_improves(
                powers, rewards, assign, mass, allowed_m, int(gis[ri]), int(iis[ri]), int(j)
            )
    return imp


def _improving_tensor(powers, rewards, assign, mass, allowed_m, exact, float_aux):
    """``imp[g, i, j]``: would miner *i* of game *g* gain by moving to *j*?

    The batched twin of :meth:`KernelGame.better_moves`'s strict
    cross-multiplication; ``j == current`` compares a payoff against
    itself and is never improving, so it needs no explicit mask.

    The float lane folds the current payoff into a per-miner ratio
    ``q = mass_cur / r_cur``: with ``A = q·(1-ε)·R - mass``, an entry
    is certainly improving when ``A > power`` and certainly not when
    ``A ≤ power - slack``, where *slack* is a per-game absolute bound
    ``2ε·(total_mass + max_power)`` covering both the ε fold and the
    accumulated float error (≤ ~6 ulp while ε is ~45 ulp). The gap
    between the two verdicts — generically empty — is re-resolved with
    exact integer arithmetic.
    """
    mass_cur = np.take_along_axis(mass, assign, axis=1)
    r_cur = np.take_along_axis(rewards, assign, axis=1)
    if exact:
        lhs = mass_cur[:, :, None] * rewards[:, None, :]
        rhs = r_cur[:, :, None] * (mass[:, None, :] + powers[:, :, None])
        imp = lhs > rhs
    else:
        powers_f, rewards_f = float_aux
        q_lo = (mass_cur / r_cur) * (1.0 - _REL_TOL)
        A = q_lo[:, :, None] * rewards_f[:, None, :]
        A -= mass.astype(np.float64)[:, None, :]
        slack = 2.0 * _REL_TOL * (mass.sum(axis=1) + powers.max(axis=1)).astype(np.float64)
        imp = A > powers_f[:, :, None]
        gap = (A > (powers_f - slack[:, None])[:, :, None]) ^ imp
        if allowed_m is not None:
            gap &= allowed_m
        gap_count = int(np.count_nonzero(gap))
        if gap_count:
            get_recorder().count("tensor.escalations.exact", gap_count)
            for gi, i, j in zip(*np.nonzero(gap)):
                imp[gi, i, j] = _exact_improves(
                    powers, rewards, assign, mass, allowed_m, gi, i, j
                )
    if allowed_m is not None:
        imp &= allowed_m
    return imp


def _best_response_targets(rewards, mass, cur, p_sel, allow_sel, exact, rewards_f):
    """Batched :meth:`KernelGame.best_response_idx` for one miner per game.

    Ascending-j scan with strict improvement over best-so-far, seeded at
    the current payoff — ties resolve to the earliest coin, exactly like
    the scalar chain. Returns -1 where no improving move exists.
    """
    g, k = mass.shape
    rows = np.arange(g)
    best_r = rewards[rows, cur].copy()
    best_den = mass[rows, cur].copy()
    target = np.full(g, -1, dtype=np.int64)
    for j in range(k):
        elig = cur != j
        if allow_sel is not None:
            elig = elig & allow_sel[:, j]
        if not elig.any():
            continue
        den_j = mass[:, j] + p_sel
        if exact:
            beat = rewards[:, j] * best_den > best_r * den_j
        else:
            lhs = rewards_f[:, j] * best_den.astype(np.float64)
            rhs = best_r.astype(np.float64) * den_j.astype(np.float64)
            diff = lhs - rhs
            tol = (lhs + rhs) * _REL_TOL
            beat = diff > tol
            unsure = np.flatnonzero((diff >= -tol) & ~beat & elig)
            if unsure.size:
                get_recorder().count("tensor.escalations.exact", int(unsure.size))
            for gi in unsure:
                beat[gi] = int(rewards[gi, j]) * int(best_den[gi]) > int(best_r[gi]) * int(
                    den_j[gi]
                )
        beat &= elig
        if beat.any():
            best_r = np.where(beat, rewards[:, j], best_r)
            best_den = np.where(beat, den_j, best_den)
            target = np.where(beat, j, target)
    return target


def _extreme_gain_targets(rewards, mass, mrow, p_sel, rank, exact, maximize, rewards_f):
    """Batched minimal-gain (``maximize=False``) / max-rpu target choice.

    Scans improving coins ascending; keeps the smallest (largest)
    post-move payoff, breaking exact payoff ties toward the smaller
    (larger) coin name — the scalar tie rule, via precomputed name
    ranks.
    """
    g, k = mrow.shape
    have = np.zeros(g, dtype=bool)
    best_r = np.zeros(g, dtype=np.int64)
    best_den = np.ones(g, dtype=np.int64)
    best_rank = np.zeros(g, dtype=np.int64)
    target = np.full(g, -1, dtype=np.int64)
    for j in range(k):
        mj = mrow[:, j]
        if not mj.any():
            continue
        den_j = mass[:, j] + p_sel
        if exact:
            lhs = rewards[:, j] * best_den
            rhs = best_r * den_j
            gt = lhs > rhs
            eq = lhs == rhs
        else:
            lhs = rewards_f[:, j] * best_den.astype(np.float64)
            rhs = best_r.astype(np.float64) * den_j.astype(np.float64)
            diff = lhs - rhs
            tol = (lhs + rhs) * _REL_TOL
            gt = diff > tol
            eq = np.zeros(g, dtype=bool)
            unsure = np.flatnonzero((diff >= -tol) & ~gt & mj & have)
            if unsure.size:
                get_recorder().count("tensor.escalations.exact", int(unsure.size))
            for gi in unsure:
                lhs_e = int(rewards[gi, j]) * int(best_den[gi])
                rhs_e = int(best_r[gi]) * int(den_j[gi])
                gt[gi] = lhs_e > rhs_e
                eq[gi] = lhs_e == rhs_e
        if maximize:
            better = gt | (eq & (rank[:, j] > best_rank))
        else:
            better = (~gt & ~eq) | (eq & (rank[:, j] < best_rank))
        take = mj & (~have | better)
        best_r = np.where(take, rewards[:, j], best_r)
        best_den = np.where(take, den_j, best_den)
        best_rank = np.where(take, rank[:, j], best_rank)
        target = np.where(take, j, target)
        have = have | mj
    return target


def _run_bucket(jobs: Sequence[TrajectoryJob], lane: str) -> List[TrajectoryOutcome]:
    """Run one same-shape, same-strategy bucket in lockstep."""
    recorder = get_recorder()
    total = len(jobs)
    n = jobs[0].kernel.n_miners
    k = jobs[0].kernel.n_coins
    pol = jobs[0].policy
    sch = jobs[0].scheduler
    eps = jobs[0].epsilon
    exact = lane == "int"

    powers = np.array([job.kernel.powers for job in jobs], dtype=np.int64)
    rewards = np.array([job.kernel.rewards for job in jobs], dtype=np.int64)
    assign = np.array([list(job.assign) for job in jobs], dtype=np.int64)
    if assign.shape != (total, n):
        raise ValueError(
            f"assignment shape {assign.shape} does not match population ({total}, {n})"
        )
    mass = np.zeros((total, k), dtype=np.int64)
    np.add.at(mass, (np.arange(total)[:, None], assign), powers)
    budgets = np.array([job.max_steps for job in jobs], dtype=np.int64)
    raise_flags = np.array([job.raise_on_budget for job in jobs], dtype=bool)
    rngs = [job.rng for job in jobs]
    steps = np.zeros(total, dtype=np.int64)
    owner = np.arange(total)

    allowed_m = None
    if any(job.allowed is not None for job in jobs):
        allowed_m = np.ones((total, n, k), dtype=bool)
        for g, job in enumerate(jobs):
            if job.allowed is None:
                continue
            allowed_m[g] = False
            for i, coins in enumerate(job.allowed):
                allowed_m[g, i, list(coins)] = True

    cursor = np.zeros(total, dtype=np.int64) if sch == "round-robin" else None
    prio = _activation_priorities(jobs, sch) if sch in ("largest", "smallest") else None
    rank = _coin_name_ranks(jobs) if pol in ("minimal", "max-rpu") else None
    rewards_f = p32 = p_gap32 = rewards_f32 = disallowed = None
    scratch_a = scratch_f = ones_k = None
    if not exact:
        # The hot lockstep tensors run in float32 with a wide bracket
        # (_REL_TOL_F32 ≈ 1e-5 versus ≤ ~3e-7 accumulated error): half
        # the memory traffic of float64 at identical final verdicts,
        # since anything inside the bracket is re-resolved exactly. The
        # per-coin scan helpers below keep the tight float64 bracket.
        rewards_f32 = rewards.astype(np.float32)
        p32 = powers.astype(np.float32)
        # Total mass is a trajectory invariant, so the per-game absolute
        # slack covering the ε fold and float error is too.
        slack = 2.0 * _REL_TOL_F32 * (mass.sum(axis=1) + powers.max(axis=1))
        p_gap32 = (powers.astype(np.float64) - slack[:, None]).astype(np.float32)
        disallowed = ~allowed_m if allowed_m is not None else None
        scratch_a = np.empty((total, n, k), dtype=np.float32)
        scratch_f = np.empty((total, n, k), dtype=np.float32)
        ones_k = np.ones(k, dtype=np.float32)
        if pol in ("best", "minimal", "max-rpu", "epsilon"):
            rewards_f = rewards.astype(np.float64)

    outcomes: List[Optional[TrajectoryOutcome]] = [None] * total
    while owner.size:
        if exact:
            imp = _improving_tensor(powers, rewards, assign, mass, allowed_m, True, None)
            unstable = imp.any(axis=2)
        else:
            # Margin tensor A[g, i, j] = q_lo·R[j] - mass[j]: miner i
            # certainly improves at j when A > power_i, certainly does
            # not when A ≤ power_i - slack. Only per-miner counts (via a
            # BLAS matvec over a 0/1 indicator — faster than any numpy
            # axis reduce here) and the activated miner's row are ever
            # read, so no (g, n, k) boolean is materialized.
            g0 = owner.size
            A = scratch_a[:g0]
            F = scratch_f[:g0]
            mass32 = mass.astype(np.float32)
            q_lo = np.take_along_axis((mass32 / rewards_f32) * _LO_F32, assign, axis=1)
            np.multiply(q_lo[:, :, None], rewards_f32[:, None, :], out=A)
            A -= mass32[:, None, :]
            if disallowed is not None:
                np.copyto(A, np.float32(-np.inf), where=disallowed)
            flat = F.reshape(g0 * n, k)
            np.greater(A, p32[:, :, None], out=F, casting="unsafe")
            cnt_strict = flat @ ones_k
            np.greater(A, p_gap32[:, :, None], out=F, casting="unsafe")
            cnt_loose = flat @ ones_k
            unstable = (cnt_strict > 0).reshape(g0, n)
            gap = ((cnt_strict == 0) & (cnt_loose > 0)).reshape(g0, n)
            if np.count_nonzero(gap):
                gis, iis = np.nonzero(gap)
                unstable[gis, iis] = _f64_margin_rows(
                    powers, rewards, assign, mass, allowed_m, gis, iis
                ).any(axis=1)
        nu = np.count_nonzero(unstable, axis=1)

        # Retire converged games, then budget-exhausted ones — the same
        # order the scalar loop checks (stability first, so a run that
        # is stable exactly at budget still counts as converged).
        live = None
        done = nu == 0
        exhausted = ~done & (steps >= budgets)
        if done.any() or exhausted.any():
            for gi in np.flatnonzero(done):
                outcomes[owner[gi]] = TrajectoryOutcome(
                    int(steps[gi]), True, tuple(int(c) for c in assign[gi])
                )
            for gi in np.flatnonzero(exhausted):
                if raise_flags[gi]:
                    raise ConvergenceError(
                        f"better-response learning did not converge within "
                        f"{int(budgets[gi])} steps"
                    )
                outcomes[owner[gi]] = TrajectoryOutcome(
                    int(steps[gi]), False, tuple(int(c) for c in assign[gi])
                )
            keep = ~(done | exhausted)
            if recorder.enabled:
                recorder.count("tensor.compactions")
            if not keep.any():
                break
            sel = np.flatnonzero(keep)
            owner, assign, mass = owner[keep], assign[keep], mass[keep]
            powers, rewards = powers[keep], rewards[keep]
            steps, budgets, raise_flags = steps[keep], budgets[keep], raise_flags[keep]
            unstable, nu = unstable[keep], nu[keep]
            rngs = [rngs[i] for i in sel]
            if allowed_m is not None:
                allowed_m = allowed_m[keep]
            if cursor is not None:
                cursor = cursor[keep]
            if prio is not None:
                prio = prio[keep]
            if rank is not None:
                rank = rank[keep]
            if exact:
                imp = imp[keep]
            else:
                p32, p_gap32, rewards_f32 = p32[keep], p_gap32[keep], rewards_f32[keep]
                if rewards_f is not None:
                    rewards_f = rewards_f[keep]
                if disallowed is not None:
                    disallowed = disallowed[keep]
                # A stays in pre-compaction row order; live maps each
                # surviving game back to its scratch row for the policy
                # phase's (g, k) row gather.
                live = sel

        g = owner.size
        rows = np.arange(g)

        # Scheduler phase: one activated miner per game. Per-game draws
        # happen on each job's own generator, in the same order and with
        # the same bounds as the scalar scheduler.
        if sch == "uniform":
            draws = np.empty(g, dtype=np.int64)
            for gi in range(g):
                draws[gi] = rngs[gi].integers(0, int(nu[gi]))
            miner = (np.cumsum(unstable, axis=1) > draws[:, None]).argmax(axis=1)
        elif sch == "round-robin":
            positions = (cursor[:, None] + np.arange(n)[None, :]) % n
            offset = np.take_along_axis(unstable, positions, axis=1).argmax(axis=1)
            miner = (cursor + offset) % n
            cursor = (miner + 1) % n
        else:
            miner = np.where(unstable, prio, n).argmin(axis=1)

        # Policy phase: one target coin per activated miner.
        cur = assign[rows, miner]
        p_sel = powers[rows, miner]
        allow_sel = allowed_m[rows, miner] if allowed_m is not None else None
        if exact:
            mrow = imp[rows, miner]
        else:
            arow = A[rows, miner] if live is None else A[live, miner]
            p_self = p32[rows, miner]
            mrow = arow > p_self[:, None]
            row_gap = (arow > p_gap32[rows, miner][:, None]) & ~mrow
            if np.count_nonzero(row_gap):
                # Certain f32 verdicts and f64 truth agree, so whole-row
                # replacement for any game with a gap entry is safe.
                gis = np.flatnonzero(row_gap.any(axis=1))
                mrow[gis] = _f64_margin_rows(
                    powers, rewards, assign, mass, allowed_m, gis, miner[gis]
                )
        if pol == "first":
            target = mrow.argmax(axis=1)
        elif pol == "random":
            counts = np.count_nonzero(mrow, axis=1)
            draws = np.empty(g, dtype=np.int64)
            for gi in range(g):
                draws[gi] = rngs[gi].integers(0, int(counts[gi]))
            target = (np.cumsum(mrow, axis=1) > draws[:, None]).argmax(axis=1)
        elif pol == "best":
            target = _best_response_targets(
                rewards, mass, cur, p_sel, allow_sel, exact, rewards_f
            )
        elif pol in ("minimal", "max-rpu"):
            target = _extreme_gain_targets(
                rewards, mass, mrow, p_sel, rank, exact, pol == "max-rpu", rewards_f
            )
        else:  # epsilon-greedy: uniform draw decides explore/exploit
            greedy = _best_response_targets(
                rewards, mass, cur, p_sel, allow_sel, exact, rewards_f
            )
            counts = np.count_nonzero(mrow, axis=1)
            cum = np.cumsum(mrow, axis=1)
            target = np.empty(g, dtype=np.int64)
            for gi in range(g):
                gen = rngs[gi]
                if gen.random() < eps:
                    draw = int(gen.integers(0, int(counts[gi])))
                    target[gi] = int((cum[gi] > draw).argmax())
                else:
                    target[gi] = greedy[gi]
        if (target < 0).any():
            raise RuntimeError("batched policy found no target for an unstable miner")

        # Apply phase: O(population) mass bookkeeping, like the scalar
        # view's O(1) apply.
        mass[rows, cur] -= p_sel
        mass[rows, target] += p_sel
        assign[rows, miner] = target
        steps += 1
    if recorder.enabled:
        # The same totals the scalar stepper emits per run, so counter
        # sums agree across executors: every live iteration scanned each
        # game once, and the retirement iteration scanned without
        # stepping, hence scans = steps + 1 per job.
        total_steps = sum(outcome.steps for outcome in outcomes)
        recorder.count("engine.runs", total)
        recorder.count("engine.steps", total_steps)
        recorder.count("engine.scans", total_steps + total)
        recorder.count(
            "engine.converged", sum(1 for outcome in outcomes if outcome.converged)
        )
    return outcomes  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Batched stability checks
# ----------------------------------------------------------------------


def stable_mask(
    kernel: KernelGame,
    assigns,
    allowed: Optional[Tuple[Tuple[int, ...], ...]] = None,
) -> np.ndarray:
    """One stability verdict per row of *assigns* (``(G, n)`` int array).

    The batched twin of :meth:`KernelGame.stable_index`, lane-dispatched
    like the trajectory stepper.
    """
    assigns = np.asarray(assigns, dtype=np.int64)
    if assigns.ndim != 2 or assigns.shape[1] != kernel.n_miners:
        raise ValueError(
            f"assigns must be (G, {kernel.n_miners}), got {assigns.shape}"
        )
    lane = kernel_lane(kernel)
    if lane == "exact":
        allowed_seq = list(allowed) if allowed is not None else None
        verdicts = []
        for row in assigns:
            assign = [int(c) for c in row]
            verdicts.append(kernel.stable_index(assign, kernel.mass_of(assign), allowed_seq))
        return np.array(verdicts, dtype=bool)
    G = assigns.shape[0]
    n, k = kernel.n_miners, kernel.n_coins
    powers = np.broadcast_to(np.array(kernel.powers, dtype=np.int64), (G, n))
    rewards = np.broadcast_to(np.array(kernel.rewards, dtype=np.int64), (G, k))
    mass = np.zeros((G, k), dtype=np.int64)
    np.add.at(mass, (np.arange(G)[:, None], assigns), powers)
    allowed_m = None
    if allowed is not None:
        row_mask = np.zeros((n, k), dtype=bool)
        for i, coins in enumerate(allowed):
            row_mask[i, list(coins)] = True
        allowed_m = np.broadcast_to(row_mask, (G, n, k))
    exact = lane == "int"
    float_aux = None
    if not exact:
        float_aux = (powers.astype(np.float64), rewards.astype(np.float64))
    imp = _improving_tensor(powers, rewards, assigns, mass, allowed_m, exact, float_aux)
    return ~imp.any(axis=(1, 2))


# ----------------------------------------------------------------------
# Simultaneous (synchronous) populations
# ----------------------------------------------------------------------


@dataclass
class SimultaneousJob:
    """One synchronous-dynamics run of the population."""

    kernel: KernelGame
    assign: Sequence[int]
    rng: np.random.Generator
    inertia: float = 0.0
    max_rounds: int = 10_000


@dataclass(frozen=True)
class SimultaneousOutcome:
    """Batched twin of :class:`~repro.learning.simultaneous.SimultaneousResult`."""

    rounds: int
    converged: bool
    cycle_start: Optional[int]
    final_assign: Tuple[int, ...]


def run_simultaneous_population(jobs: Sequence[SimultaneousJob]) -> List[SimultaneousOutcome]:
    """Advance synchronous best-response dynamics for a population.

    Round-for-round identical to
    :func:`~repro.learning.simultaneous.run_simultaneous`: per round all
    miners' best responses are evaluated against the pre-round state,
    inertia draws happen per miner-with-a-target in miner order on each
    job's own generator, a round with no movers means convergence, and
    (for ``inertia=0``) a repeated configuration proves a permanent
    cycle.
    """
    jobs = list(jobs)
    outcomes: List[Optional[SimultaneousOutcome]] = [None] * len(jobs)
    lanes: Dict[int, str] = {}
    buckets: Dict[tuple, List[int]] = {}
    for pos, job in enumerate(jobs):
        if not 0.0 <= job.inertia < 1.0:
            raise ValueError(f"inertia must be in [0, 1), got {job.inertia}")
        if job.max_rounds < 1:
            raise ValueError(f"max_rounds must be ≥ 1, got {job.max_rounds}")
        lane = lanes.get(id(job.kernel))
        if lane is None:
            lane = lanes[id(job.kernel)] = kernel_lane(job.kernel)
        if lane == "exact":
            outcomes[pos] = _run_scalar_simultaneous(job)
            continue
        key = (job.kernel.n_miners, job.kernel.n_coins, lane)
        buckets.setdefault(key, []).append(pos)
    for key, positions in buckets.items():
        results = _run_sim_bucket([jobs[p] for p in positions], lane=key[-1])
        for p, outcome in zip(positions, results):
            outcomes[p] = outcome
    return outcomes  # type: ignore[return-value]


def _run_scalar_simultaneous(job: SimultaneousJob) -> SimultaneousOutcome:
    from repro.core.configuration import Configuration
    from repro.learning.simultaneous import run_simultaneous

    game = job.kernel.game
    config = Configuration(game.miners, [game.coins[int(j)] for j in job.assign])
    result = run_simultaneous(
        game,
        config,
        inertia=job.inertia,
        max_rounds=job.max_rounds,
        seed=job.rng,
        backend="fast",
    )
    final = tuple(int(j) for j in job.kernel.assignment_of(result.final))
    return SimultaneousOutcome(result.rounds, result.converged, result.cycle_start, final)


def _best_response_all(powers, rewards, assign, mass, exact, powers_f, rewards_f):
    """Best-response target (or -1) for *every* miner of every game."""
    g, n = assign.shape
    k = mass.shape[1]
    best_r = np.take_along_axis(rewards, assign, axis=1).copy()
    best_den = np.take_along_axis(mass, assign, axis=1).copy()
    target = np.full((g, n), -1, dtype=np.int64)
    for j in range(k):
        elig = assign != j
        den_j = mass[:, j][:, None] + powers
        if exact:
            beat = rewards[:, j][:, None] * best_den > best_r * den_j
        else:
            lhs = rewards_f[:, j][:, None] * best_den.astype(np.float64)
            rhs = best_r.astype(np.float64) * den_j.astype(np.float64)
            diff = lhs - rhs
            tol = (lhs + rhs) * _REL_TOL
            beat = diff > tol
            unsure = (diff >= -tol) & ~beat & elig
            unsure_count = int(np.count_nonzero(unsure))
            if unsure_count:
                get_recorder().count("tensor.escalations.exact", unsure_count)
            for gi, i in zip(*np.nonzero(unsure)):
                beat[gi, i] = int(rewards[gi, j]) * int(best_den[gi, i]) > int(
                    best_r[gi, i]
                ) * int(den_j[gi, i])
        beat &= elig
        best_r = np.where(beat, rewards[:, j][:, None], best_r)
        best_den = np.where(beat, den_j, best_den)
        target = np.where(beat, j, target)
    return target


def _run_sim_bucket(jobs: Sequence[SimultaneousJob], lane: str) -> List[SimultaneousOutcome]:
    total = len(jobs)
    n = jobs[0].kernel.n_miners
    k = jobs[0].kernel.n_coins
    exact = lane == "int"

    powers = np.array([job.kernel.powers for job in jobs], dtype=np.int64)
    rewards = np.array([job.kernel.rewards for job in jobs], dtype=np.int64)
    assign = np.array([list(job.assign) for job in jobs], dtype=np.int64)
    mass = np.zeros((total, k), dtype=np.int64)
    np.add.at(mass, (np.arange(total)[:, None], assign), powers)
    limits = np.array([job.max_rounds for job in jobs], dtype=np.int64)
    inertias = [job.inertia for job in jobs]
    rngs = [job.rng for job in jobs]
    rounds = np.zeros(total, dtype=np.int64)
    owner = np.arange(total)
    seen: List[Optional[Dict[bytes, int]]] = [
        ({assign[g].tobytes(): 0} if job.inertia == 0.0 else None)
        for g, job in enumerate(jobs)
    ]
    powers_f = powers.astype(np.float64) if not exact else None
    rewards_f = rewards.astype(np.float64) if not exact else None

    outcomes: List[Optional[SimultaneousOutcome]] = [None] * total

    def compact(keep):
        nonlocal owner, assign, mass, powers, rewards, limits, inertias, rngs
        nonlocal rounds, seen, powers_f, rewards_f
        sel = np.flatnonzero(keep)
        owner, assign, mass = owner[keep], assign[keep], mass[keep]
        powers, rewards = powers[keep], rewards[keep]
        limits, rounds = limits[keep], rounds[keep]
        inertias = [inertias[i] for i in sel]
        rngs = [rngs[i] for i in sel]
        seen = [seen[i] for i in sel]
        if not exact:
            powers_f, rewards_f = powers_f[keep], rewards_f[keep]

    while owner.size:
        targets = _best_response_all(powers, rewards, assign, mass, exact, powers_f, rewards_f)
        has_move = targets >= 0

        # Round budget: the scalar loop simply stops after max_rounds
        # and reports stability of the final state.
        exhausted = rounds >= limits
        if exhausted.any():
            for gi in np.flatnonzero(exhausted):
                outcomes[owner[gi]] = SimultaneousOutcome(
                    int(rounds[gi]),
                    not has_move[gi].any(),
                    None,
                    tuple(int(c) for c in assign[gi]),
                )
            keep = ~exhausted
            if not keep.any():
                break
            compact(keep)
            targets, has_move = targets[keep], has_move[keep]

        g = owner.size
        movers = has_move.copy()
        for gi in range(g):
            p = inertias[gi]
            if p > 0.0:
                gen = rngs[gi]
                for i in np.flatnonzero(has_move[gi]):
                    if gen.random() < p:
                        movers[gi, i] = False

        idle = ~movers.any(axis=1)
        if idle.any():
            for gi in np.flatnonzero(idle):
                outcomes[owner[gi]] = SimultaneousOutcome(
                    int(rounds[gi]), True, None, tuple(int(c) for c in assign[gi])
                )
            keep = ~idle
            if not keep.any():
                break
            compact(keep)
            targets, movers = targets[keep], movers[keep]
            g = owner.size

        # All targets were evaluated against the pre-round state; the
        # batched assignment update realizes the simultaneous jump.
        assign = np.where(movers, targets, assign)
        mass = np.zeros((g, k), dtype=np.int64)
        np.add.at(mass, (np.arange(g)[:, None], assign), powers)
        rounds += 1

        cycled = np.zeros(g, dtype=bool)
        for gi in range(g):
            history = seen[gi]
            if history is None:
                continue
            key = assign[gi].tobytes()
            previous = history.get(key)
            if previous is not None:
                cycled[gi] = True
                outcomes[owner[gi]] = SimultaneousOutcome(
                    int(rounds[gi]), False, previous, tuple(int(c) for c in assign[gi])
                )
            else:
                history[key] = int(rounds[gi])
        if cycled.any():
            keep = ~cycled
            if not keep.any():
                break
            compact(keep)
    return outcomes  # type: ignore[return-value]
