"""``repro.kernel`` — exact integer fast path and batched execution.

The kernel is the performance seam of the library:

* :class:`~repro.kernel.core.KernelGame` normalizes a game's powers and
  rewards to common integer denominators once, then answers every
  better-response / stability query with integer cross-multiplication —
  bit-for-bit the decisions of the :class:`fractions.Fraction` core
  with none of its per-comparison allocation.
* :class:`~repro.kernel.engine.KernelView` is the integer
  implementation of the strategy-view protocol
  (:class:`repro.learning.view.GameView`): the single trajectory loop
  in :mod:`repro.learning.engine` drives it when ``backend="fast"``
  (the default) — for standard *and* custom policies/schedulers alike,
  with per-coin integer masses maintained incrementally in O(1) per
  step.
* :class:`~repro.kernel.space.ConfigSpace` is the exact *enumeration*
  engine: base-``|C|`` integer configuration codes, Gray-code walks
  with O(1) mass updates, equal-power symmetry reduction, and flat
  successor arrays for the Theorem 1 DAG analyses — the backbone of
  ``enumerate_equilibria``, ``analyze_improvement_dag`` and the
  Proposition 1 refuter at ``backend="space"`` (their default).
* :mod:`repro.kernel.classes` compresses interchangeable miners —
  equal kernel-scaled power and equal allowed-coin set — into
  per-class *counts*: :class:`~repro.kernel.classes.ClassGame` holds a
  configuration as an integer count matrix,
  :func:`~repro.kernel.classes.run_class_better_response` moves whole
  chunks of a class per macro step with a closed-form maximal run
  length (millions of miners converge exactly in milliseconds), and
  :class:`~repro.kernel.classes.ClassView` is the drop-in
  ``backend="class"`` view with per-class scan memoization. Stable
  count profiles orbit-expand bit-for-bit to the per-miner equilibrium
  sets of :class:`ConfigSpace`.
* :class:`~repro.kernel.batch.BatchRunner` fans independent
  trajectories (seeds × schedulers × policies) out over
  :mod:`concurrent.futures` workers — or hands them whole to the tensor
  kernel (``executor="vectorized"``) — with per-run RNG streams spawned
  from one root seed, so results are identical in every mode.
* :mod:`repro.kernel.tensor` advances a whole *population* of same-shape
  games per numpy step (:func:`~repro.kernel.tensor.run_trajectory_population`,
  :func:`~repro.kernel.tensor.run_simultaneous_population`,
  :func:`~repro.kernel.tensor.stable_mask`), replicating the scalar
  :class:`KernelView` stepper bit-for-bit — same RNG stream consumption,
  same tie-breaks, same finals — via a three-lane arithmetic strategy
  (exact int64 / bracketed floats with exact fallback / whole-game
  scalar fallback, see :func:`~repro.kernel.tensor.kernel_lane`).

Most callers should not touch these classes directly: the library-wide
front door is :func:`repro.run_many`, which routes
:class:`~repro.run.RunSpec` cells to the right mechanism.
"""

from repro.kernel.batch import (
    BatchRunner,
    TrajectorySummary,
    build_vector_jobs,
    run_trajectory_batch,
)
from repro.kernel.classes import (
    ClassGame,
    ClassRunResult,
    ClassSimultaneousResult,
    ClassTrajectory,
    ClassView,
    run_class_better_response,
    run_class_simultaneous,
)
from repro.kernel.core import KernelGame
from repro.kernel.engine import KernelView
from repro.kernel.space import ConfigSpace, DagReport
from repro.kernel.tensor import (
    TrajectoryJob,
    TrajectoryOutcome,
    kernel_lane,
    run_simultaneous_population,
    run_trajectory_population,
    stable_mask,
)

__all__ = [
    "BatchRunner",
    "ClassGame",
    "ClassRunResult",
    "ClassSimultaneousResult",
    "ClassTrajectory",
    "ClassView",
    "ConfigSpace",
    "DagReport",
    "KernelGame",
    "KernelView",
    "TrajectoryJob",
    "TrajectoryOutcome",
    "TrajectorySummary",
    "build_vector_jobs",
    "kernel_lane",
    "run_class_better_response",
    "run_class_simultaneous",
    "run_simultaneous_population",
    "run_trajectory_batch",
    "run_trajectory_population",
    "stable_mask",
]
