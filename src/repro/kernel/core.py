"""Exact integer fast-path kernel for the Game of Coins.

The seed core (:mod:`repro.core.game`) stores powers and rewards as
:class:`fractions.Fraction` and compares payoffs by Fraction arithmetic,
which allocates and gcd-normalizes on every comparison. All decisions in
the learning hot loop, however, are *ordinal*: they only ask which of
two rational payoffs is larger. Those comparisons survive scaling every
power by one positive constant and every reward by another:

    ``F(c')/(M'+m) > F(c)/M  ⟺  R[c']·M > R[c]·(M'+m)``

after powers and rewards are brought to common integer denominators.

:class:`KernelGame` performs that normalization **once per game** and
then answers every better-response, best-response and stability query
with plain integer cross-multiplication — no Fraction is allocated in
the step loop, and every verdict is bit-for-bit identical to the
Fraction core (same strict inequalities, same iteration order, same
tie-breaks). The learning engines use the index-level methods; the
object-level wrappers exist for audits and the parity test suite.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner


def _common_integers(values: Sequence[Fraction]) -> List[int]:
    """Scale exact fractions to integers by one shared positive factor.

    Returns numerators over the least common denominator, reduced by
    their collective gcd to keep magnitudes (and thus int-multiplication
    cost) small.
    """
    lcm = 1
    for value in values:
        den = value.denominator
        lcm = lcm // gcd(lcm, den) * den
    scaled = [int(value.numerator * (lcm // value.denominator)) for value in values]
    shared = 0
    for number in scaled:
        shared = gcd(shared, number)
    if shared > 1:
        scaled = [number // shared for number in scaled]
    return scaled


class KernelGame:
    """An integer-normalized snapshot of a :class:`Game`.

    The snapshot is immutable and cheap to build (one pass over miners
    and coins). State in the hot loop is a pair of plain lists:

    ``assign``
        coin index per miner, aligned with ``game.miners`` order;
    ``mass``
        integer coin power per coin index (``M_c(s)`` scaled), kept
        incrementally by the engines.

    All index-level predicates reproduce the Fraction core's decisions
    exactly, including iteration order and name tie-breaks.
    """

    __slots__ = (
        "game",
        "powers",
        "rewards",
        "miner_index",
        "coin_index",
        "miner_names",
        "coin_names",
        "reward_fractions",
        "n_miners",
        "n_coins",
    )

    def __init__(self, game: Game):
        self.game = game
        miners = game.miners
        coins = game.coins
        self.powers: List[int] = _common_integers([miner.power for miner in miners])
        self.rewards: List[int] = _common_integers([game.rewards[coin] for coin in coins])
        self.miner_index: Dict[Miner, int] = {miner: i for i, miner in enumerate(miners)}
        self.coin_index: Dict[Coin, int] = {coin: j for j, coin in enumerate(coins)}
        self.miner_names: Tuple[str, ...] = tuple(miner.name for miner in miners)
        self.coin_names: Tuple[str, ...] = tuple(coin.name for coin in coins)
        self.reward_fractions: Tuple[Fraction, ...] = tuple(game.rewards[coin] for coin in coins)
        self.n_miners = len(miners)
        self.n_coins = len(coins)

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------

    def assignment_of(self, config: Configuration) -> List[int]:
        """Coin index per miner (``game.miners`` order) for *config*."""
        coin_index = self.coin_index
        return [coin_index[config.coin_of(miner)] for miner in self.game.miners]

    def mass_of(self, assign: Sequence[int]) -> List[int]:
        """Integer ``M_c(s)`` per coin index for an assignment."""
        mass = [0] * self.n_coins
        powers = self.powers
        for i, j in enumerate(assign):
            mass[j] += powers[i]
        return mass

    def payoff_fraction(self, i: int, j: int, mass_j: int) -> Fraction:
        """Miner *i*'s exact payoff on coin *j* carrying integer mass.

        Powers scale out of ``m_p / M_c``, so the exact value is
        ``(W_i / mass_j) · F(c_j)`` with the *original* reward fraction.
        Used only when a Fraction must leave the kernel (step records).
        """
        return Fraction(self.powers[i], mass_j) * self.reward_fractions[j]

    # ------------------------------------------------------------------
    # Index-level better-response structure (the hot path)
    # ------------------------------------------------------------------

    def better_moves(
        self,
        i: int,
        assign: Sequence[int],
        mass: Sequence[int],
        within: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Improving coin indices for miner *i*, in coin order.

        *within* restricts the candidate coins (ascending indices —
        the restricted-game mask); ``None`` means all coins.
        """
        cur = assign[i]
        reward_cur = self.rewards[cur]
        mass_cur = mass[cur]
        power = self.powers[i]
        rewards = self.rewards
        candidates = range(self.n_coins) if within is None else within
        return [
            j
            for j in candidates
            if j != cur and rewards[j] * mass_cur > reward_cur * (mass[j] + power)
        ]

    def unstable(
        self,
        assign: Sequence[int],
        mass: Sequence[int],
        allowed: Optional[Sequence[Sequence[int]]] = None,
    ) -> List[int]:
        """Indices of miners with at least one improving move, in order.

        *allowed* is a per-miner candidate-coin mask (``allowed[i]`` in
        ascending index order); ``None`` means unrestricted.
        """
        rewards = self.rewards
        powers = self.powers
        result = []
        for i in range(self.n_miners):
            cur = assign[i]
            reward_cur = rewards[cur]
            mass_cur = mass[cur]
            power = powers[i]
            candidates = range(self.n_coins) if allowed is None else allowed[i]
            for j in candidates:
                if j != cur and rewards[j] * mass_cur > reward_cur * (mass[j] + power):
                    result.append(i)
                    break
        return result

    def stable_index(
        self,
        assign: Sequence[int],
        mass: Sequence[int],
        allowed: Optional[Sequence[Sequence[int]]] = None,
    ) -> bool:
        """Early-exit stability: no miner has an improving move.

        The predicate twin of :meth:`unstable` — it returns on the
        first improving move found instead of materializing the list,
        which is what the enumeration engine's per-node checks want.
        *allowed* is the per-miner candidate-coin mask (``allowed[i]``
        in ascending index order); ``None`` means unrestricted.
        """
        rewards = self.rewards
        powers = self.powers
        for i in range(self.n_miners):
            cur = assign[i]
            reward_cur = rewards[cur]
            mass_cur = mass[cur]
            power = powers[i]
            candidates = range(self.n_coins) if allowed is None else allowed[i]
            for j in candidates:
                if j != cur and rewards[j] * mass_cur > reward_cur * (mass[j] + power):
                    return False
        return True

    def best_response_idx(
        self,
        i: int,
        assign: Sequence[int],
        mass: Sequence[int],
        within: Optional[Sequence[int]] = None,
    ) -> Optional[int]:
        """The payoff-maximizing improving coin index, or ``None``.

        Mirrors :meth:`repro.core.game.Game.best_response`: scan coins
        in order, strict improvement over the best seen so far, start
        from the current payoff — so ties resolve to the earliest coin,
        exactly like the Fraction core. *within* restricts the scanned
        coins (ascending indices).
        """
        cur = assign[i]
        power = self.powers[i]
        rewards = self.rewards
        # Best-so-far payoff as the pair (reward, denominator): payoff
        # of miner i on coin j is proportional to R[j] / denom_j.
        best_reward = rewards[cur]
        best_den = mass[cur]
        best: Optional[int] = None
        candidates = range(self.n_coins) if within is None else within
        for j in candidates:
            if j == cur:
                continue
            den = mass[j] + power
            if rewards[j] * best_den > best_reward * den:
                best_reward = rewards[j]
                best_den = den
                best = j
        return best

    def minimal_gain_idx(
        self, i: int, moves: Sequence[int], mass: Sequence[int], cur: Optional[int] = None
    ) -> int:
        """The candidate move with the smallest post-move payoff (ties: name).

        On improving moves the gain ordering equals the post-move
        payoff ordering (the current payoff is a common constant), so
        the comparison is the same cross-multiplication with the
        opposite sense. Passing the miner's current coin index as
        *cur* makes "moving" there cost nothing — its mass already
        includes the miner — so arbitrary candidate lists (the view
        selection helpers accept them) rank exactly like the Fraction
        core.
        """
        power = self.powers[i]
        rewards = self.rewards
        names = self.coin_names
        best = moves[0]
        best_reward = rewards[best]
        best_den = mass[best] if best == cur else mass[best] + power
        for j in moves[1:]:
            den = mass[j] if j == cur else mass[j] + power
            lhs = rewards[j] * best_den
            rhs = best_reward * den
            if lhs < rhs or (lhs == rhs and names[j] < names[best]):
                best = j
                best_reward = rewards[j]
                best_den = den
        return best

    def max_rpu_idx(
        self, i: int, moves: Sequence[int], mass: Sequence[int], cur: Optional[int] = None
    ) -> int:
        """The candidate move with the highest post-move RPU (ties: name).

        *cur* as in :meth:`minimal_gain_idx`.
        """
        power = self.powers[i]
        rewards = self.rewards
        names = self.coin_names
        best = moves[0]
        best_reward = rewards[best]
        best_den = mass[best] if best == cur else mass[best] + power
        for j in moves[1:]:
            den = mass[j] if j == cur else mass[j] + power
            lhs = rewards[j] * best_den
            rhs = best_reward * den
            if lhs > rhs or (lhs == rhs and names[j] > names[best]):
                best = j
                best_reward = rewards[j]
                best_den = den
        return best

    # ------------------------------------------------------------------
    # Object-level wrappers (audits, parity tests)
    # ------------------------------------------------------------------

    def better_response_moves(self, miner: Miner, config: Configuration) -> Tuple[Coin, ...]:
        """Integer-arithmetic twin of :meth:`Game.better_response_moves`."""
        assign = self.assignment_of(config)
        mass = self.mass_of(assign)
        coins = self.game.coins
        return tuple(coins[j] for j in self.better_moves(self.miner_index[miner], assign, mass))

    def best_response(self, miner: Miner, config: Configuration) -> Optional[Coin]:
        """Integer-arithmetic twin of :meth:`Game.best_response`."""
        assign = self.assignment_of(config)
        mass = self.mass_of(assign)
        j = self.best_response_idx(self.miner_index[miner], assign, mass)
        return None if j is None else self.game.coins[j]

    def unstable_miners(self, config: Configuration) -> Tuple[Miner, ...]:
        """Integer-arithmetic twin of :meth:`Game.unstable_miners`."""
        assign = self.assignment_of(config)
        mass = self.mass_of(assign)
        miners = self.game.miners
        return tuple(miners[i] for i in self.unstable(assign, mass))

    def is_stable(self, config: Configuration) -> bool:
        """Integer-arithmetic twin of :meth:`Game.is_stable`."""
        assign = self.assignment_of(config)
        mass = self.mass_of(assign)
        return not self.unstable(assign, mass)

    def __repr__(self) -> str:
        return f"KernelGame({self.game!r})"
