"""Batched trajectory execution over :mod:`concurrent.futures`.

Multi-seed experiments (E2 convergence sweeps, E9 learning-speed grids,
E13 basin sampling) are embarrassingly parallel: every trajectory is an
independent ``(game, policy, scheduler, seed)`` cell. The
:class:`BatchRunner` fans such cells out to worker processes (or
threads, or runs them serially) and returns light-weight, picklable
:class:`TrajectorySummary` records.

Determinism is scheduler-independent by construction: all per-run RNG
streams are spawned *up front* from one root ``SeedSequence`` — the
same scheme :func:`repro.util.rng.spawn_rngs` uses — so the summaries
are identical whether the batch runs serially, on threads, or across
processes, and identical to a plain loop over
:class:`~repro.learning.engine.LearningEngine` with the same seed.
Workers drive the unified view-based trajectory loop, so batched
*custom* policies/schedulers get the integer kernel too.
"""

from __future__ import annotations

import copy
import os
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from pickle import PicklingError
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.obs.log import get_logger
from repro.obs.recorder import get_recorder

logger = get_logger("kernel.batch")

#: Below this many runs a process pool costs more than it saves.
_AUTO_PROCESS_THRESHOLD = 32


class PooledRunner:
    """Shared executor plumbing for chunked batch runners.

    Subclasses declare ``executor`` / ``max_workers`` fields, call
    :meth:`_init_pool` and :meth:`_validate_pool_args` during init, and
    hand :meth:`_execute_chunked` a picklable module-level worker. The
    plumbing — lazy pool reuse across calls, the ``auto`` mode switch,
    and the degrade-quietly fallback for transport failures — then
    behaves identically for every runner built on it
    (:class:`BatchRunner` here,
    :class:`~repro.stochastic.noisy_engine.NoisyBatchRunner` in the
    stochastic layer).
    """

    #: ``auto`` uses a process pool from this many items upward.
    auto_process_threshold: int = _AUTO_PROCESS_THRESHOLD

    #: Executor modes this runner accepts; subclasses with a batched
    #: fast path extend this with ``"vectorized"``.
    pool_modes: Tuple[str, ...] = ("auto", "serial", "thread", "process")

    executor: str
    max_workers: Optional[int]

    def _init_pool(self) -> None:
        self._pool = None
        self._pool_key = None

    def _validate_pool_args(self) -> None:
        if self.executor not in self.pool_modes:
            expected = ", ".join(repr(mode) for mode in self.pool_modes[:-1])
            raise ValueError(
                f"executor must be {expected} or {self.pool_modes[-1]!r}, "
                f"got {self.executor!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {self.max_workers}")

    def _mode(self, items: int) -> str:
        if self.executor != "auto":
            return self.executor
        cores = os.cpu_count() or 1
        if items >= self.auto_process_threshold and cores >= 2:
            return "process"
        return "serial"

    def _get_pool(self, mode: str, workers: int):
        key = (mode, workers)
        if self._pool is None or self._pool_key != key:
            self.close()
            pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
            self._pool = pool_cls(max_workers=workers)
            self._pool_key = key
        return self._pool

    def close(self) -> None:
        """Shut down the reused worker pool (if one was created)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_key = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _execute_chunked(self, worker, serial_payload, make_chunks, items: int):
        """Map *worker* over per-worker chunks, degrading to one serial call.

        ``make_chunks(chunk_size)`` builds the payload list;
        ``worker(serial_payload)`` must be equivalent to the
        concatenated chunk results (the pre-spawned-stream seeding
        discipline guarantees it for every runner here).
        """
        mode = self._mode(items)
        if mode == "serial":
            return worker(serial_payload)
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, items)
        chunks = make_chunks(-(-items // workers))
        recorder = get_recorder()
        if recorder.enabled:
            recorder.event(
                "pool.map",
                runner=type(self).__name__,
                mode=mode,
                workers=workers,
                chunks=len(chunks),
                items=items,
            )
        try:
            pool = self._get_pool(mode, workers)
            parts = list(pool.map(worker, chunks))
        except (OSError, BrokenExecutor, PicklingError, AttributeError, TypeError) as error:
            # Environment/transport failures (sandboxes without
            # fork/semaphores; unpicklable payloads, which surface as
            # PicklingError/AttributeError/TypeError from the pickler):
            # the serial result is identical by construction, so
            # degrade quietly. Exceptions raised *inside* a task
            # propagate — from the serial rerun if caught here.
            self.close()
            if recorder.enabled:
                recorder.count("pool.degradations")
                recorder.event(
                    "pool.degraded",
                    runner=type(self).__name__,
                    mode=mode,
                    error=type(error).__name__,
                )
            logger.warning(
                "%s: %s executor unavailable (%s); running serially",
                type(self).__name__,
                mode,
                type(error).__name__,
            )
            warnings.warn(
                f"{type(self).__name__}: {mode} executor unavailable "
                f"({type(error).__name__}: {error}); running serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return worker(serial_payload)
        flat = []
        for part in parts:
            flat.extend(part)
        return flat


@dataclass(frozen=True)
class TrajectorySummary:
    """Picklable outcome of one batched learning run."""

    run_index: int
    policy_name: str
    scheduler_name: str
    steps: int
    converged: bool
    #: Final coin name per miner, in ``game.miners`` order.
    final_coins: Tuple[str, ...]

    def final_configuration(self, game: Game) -> Configuration:
        """Materialize the final configuration against *game*."""
        return game.configuration(self.final_coins)


@dataclass(frozen=True)
class CellStats:
    """Streamed aggregate of one batch cell: counts and final states only.

    The opt-in alternative to a list of per-run
    :class:`TrajectorySummary` records (``RunSpec(stream=True)`` /
    ``BatchRunner.run(stream=True)``): per-run step counts, the
    converged tally and a final-state census, folded inside the worker,
    so a grid cell ships one small picklable object across the pool
    instead of ``runs`` records nobody reads individually. ``steps``
    stays per-run (in run-index order) so downstream statistics —
    mean/median/max, :func:`~repro.analysis.convergence.stats_from_steps`
    — are exactly the values the summary list would have produced.
    """

    runs: int
    policy_name: str
    scheduler_name: str
    #: Per-run step counts, in run-index order.
    steps: Tuple[int, ...]
    #: How many runs reached a stable configuration.
    converged: int
    #: Final-state census: ``((coin name per miner, ...), count)``
    #: pairs, sorted for a canonical (hashable, serializable) order.
    finals: Tuple[Tuple[Tuple[str, ...], int], ...]

    @property
    def mean_steps(self) -> float:
        return sum(self.steps) / len(self.steps)

    def final_counts(self) -> Dict[Tuple[str, ...], int]:
        """The census as a dict: final coin tuple → number of runs."""
        return dict(self.finals)

    @classmethod
    def from_summaries(cls, summaries: Sequence[TrajectorySummary]) -> "CellStats":
        """Fold per-run summaries into the equivalent streamed aggregate."""
        finals: Dict[Tuple[str, ...], int] = {}
        for summary in summaries:
            finals[summary.final_coins] = finals.get(summary.final_coins, 0) + 1
        return cls(
            runs=len(summaries),
            policy_name=summaries[0].policy_name,
            scheduler_name=summaries[0].scheduler_name,
            steps=tuple(summary.steps for summary in summaries),
            converged=sum(1 for summary in summaries if summary.converged),
            finals=tuple(sorted(finals.items())),
        )

    @staticmethod
    def merge(parts: Sequence["CellStats"]) -> "CellStats":
        """Concatenate partial aggregates from ordered contiguous chunks."""
        if len(parts) == 1:
            return parts[0]
        steps: List[int] = []
        finals: Dict[Tuple[str, ...], int] = {}
        runs = 0
        converged = 0
        for part in parts:
            runs += part.runs
            converged += part.converged
            steps.extend(part.steps)
            for key, count in part.finals:
                finals[key] = finals.get(key, 0) + count
        return CellStats(
            runs=runs,
            policy_name=parts[0].policy_name,
            scheduler_name=parts[0].scheduler_name,
            steps=tuple(steps),
            converged=converged,
            finals=tuple(sorted(finals.items())),
        )


def _run_chunk(payload: Tuple[Any, ...]) -> List[Any]:
    """Worker: run a contiguous chunk of trajectories for one game.

    Module-level (and importing lazily) so process pools can pickle it
    without pulling the engine into the kernel's import graph. Runs in
    ``record="summary"`` streaming mode: a summary keeps counts and the
    final state only, so no per-step history is allocated just to be
    thrown away. With ``stream`` set the chunk folds even the per-run
    records away and returns a one-element list holding a partial
    :class:`CellStats` (merged across chunks by the caller).
    """
    from repro.core.factories import random_configuration, random_restricted_configuration
    from repro.learning.engine import LearningEngine

    (
        game,
        policy,
        scheduler,
        backend,
        max_steps,
        allowed,
        first_index,
        seed_pairs,
        stream,
    ) = payload
    # Chunks may run concurrently on threads; stateful strategies (e.g.
    # RoundRobinScheduler's cursor) must not be shared across them.
    policy = copy.deepcopy(policy)
    scheduler = copy.deepcopy(scheduler)
    engine_kwargs = {} if max_steps is None else {"max_steps": max_steps}
    engine = LearningEngine(
        policy=policy,
        scheduler=scheduler,
        record="summary",
        backend=backend,
        **engine_kwargs,
    )
    summaries: List[TrajectorySummary] = []
    steps: List[int] = []
    converged = 0
    finals: Dict[Tuple[str, ...], int] = {}
    assert engine.policy is not None and engine.scheduler is not None
    for offset, (start_seed, run_seed) in enumerate(seed_pairs):
        if allowed is None:
            start = random_configuration(game, seed=np.random.default_rng(start_seed))
        else:
            start = random_restricted_configuration(
                game, allowed, seed=np.random.default_rng(start_seed)
            )
        trajectory = engine.run(
            game, start, seed=np.random.default_rng(run_seed), allowed=allowed
        )
        final = trajectory.final
        final_coins = tuple(final.coin_of(miner).name for miner in game.miners)
        if stream:
            steps.append(trajectory.length)
            converged += trajectory.converged
            finals[final_coins] = finals.get(final_coins, 0) + 1
        else:
            summaries.append(
                TrajectorySummary(
                    run_index=first_index + offset,
                    policy_name=engine.policy.name,
                    scheduler_name=engine.scheduler.name,
                    steps=trajectory.length,
                    converged=trajectory.converged,
                    final_coins=final_coins,
                )
            )
    if stream:
        return [
            CellStats(
                runs=len(seed_pairs),
                policy_name=engine.policy.name,
                scheduler_name=engine.scheduler.name,
                steps=tuple(steps),
                converged=converged,
                finals=tuple(sorted(finals.items())),
            )
        ]
    return summaries


def build_vector_jobs(
    game: Game,
    *,
    policy=None,
    scheduler=None,
    seed_pairs: Sequence[Tuple[Any, Any]],
    allowed=None,
    max_steps: Optional[int] = None,
    backend: str = "fast",
    kernel=None,
):
    """Map one batch cell onto tensor-kernel jobs; returns ``(jobs, kernel)``.

    Start configurations are drawn exactly as :func:`_run_chunk` draws
    them (one generator per start stream, mask-aware when ``allowed`` is
    set), and each job carries the generator of its run stream — so the
    population result is bit-identical to the scalar executors. Raises
    ``ValueError`` when the cell is not vectorizable (non-``"fast"``
    backend, or a custom policy/scheduler subclass, which must keep its
    override and therefore the scalar loop).
    """
    from repro.core.factories import random_restricted_configuration
    from repro.core.restricted import normalize_mask
    from repro.kernel.core import KernelGame
    from repro.kernel.tensor import TrajectoryJob, policy_kind, scheduler_kind
    from repro.learning.engine import DEFAULT_MAX_STEPS

    kinds = policy_kind(policy)
    scheduler_code = scheduler_kind(scheduler)
    if backend != "fast":
        reason = f"backend={backend!r}"
    elif kinds is None:
        reason = f"policy {type(policy).__name__!r}"
    elif scheduler_code is None:
        reason = f"scheduler {type(scheduler).__name__!r}"
    else:
        reason = None
    if reason is not None:
        raise ValueError(
            f"executor='vectorized' supports backend='fast' with the standard "
            f"policies and schedulers; {reason} needs 'serial', 'thread' or 'process'"
        )
    if kernel is None:
        kernel = KernelGame(game)
    mask = normalize_mask(game, allowed)
    allowed_idx = None
    if mask is not None:
        coin_index = kernel.coin_index
        allowed_idx = tuple(
            tuple(coin_index[coin] for coin in mask[miner]) for miner in game.miners
        )
    budget = DEFAULT_MAX_STEPS if max_steps is None else max_steps
    n_miners, n_coins = kernel.n_miners, kernel.n_coins
    jobs = []
    for start_seed, run_seed in seed_pairs:
        start_gen = np.random.default_rng(start_seed)
        if mask is None:
            # Same single draw as random_configuration, minus the
            # Configuration round-trip (kernel coin order is game order).
            assign = [int(j) for j in start_gen.integers(0, n_coins, n_miners)]
        else:
            start = random_restricted_configuration(game, mask, seed=start_gen)
            assign = kernel.assignment_of(start)
        jobs.append(
            TrajectoryJob(
                kernel=kernel,
                assign=assign,
                rng=np.random.default_rng(run_seed),
                policy=kinds[0],
                scheduler=scheduler_code,
                epsilon=kinds[1],
                allowed=allowed_idx,
                max_steps=budget,
            )
        )
    return jobs, kernel


@dataclass
class BatchRunner(PooledRunner):
    """Run many independent learning trajectories, optionally in parallel.

    Parameters
    ----------
    backend:
        Numeric backend handed to every worker's engine (``"fast"``,
        ``"exact"`` or ``"class"``).
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, ``"vectorized"``
        (the tensor population kernel of :mod:`repro.kernel.tensor`;
        standard policies/schedulers on the ``"fast"`` backend only) or
        ``"auto"`` (processes for large batches on multi-core hosts,
        serial otherwise). Results are identical across all modes.
    max_workers:
        Worker count for the pooled modes (default: ``os.cpu_count()``).
    max_steps:
        Per-trajectory step budget (default: the engine's own
        ``DEFAULT_MAX_STEPS``).

    Pooled executors are created lazily on first use and reused across
    :meth:`run` calls, so grid sweeps amortize process start-up; call
    :meth:`close` (or use the runner as a context manager) to shut the
    pool down eagerly.
    """

    backend: str = "fast"
    executor: str = "auto"
    max_workers: Optional[int] = None
    max_steps: Optional[int] = None

    pool_modes = ("auto", "serial", "thread", "process", "vectorized")

    def __post_init__(self) -> None:
        self._init_pool()
        if self.backend not in ("fast", "exact", "class"):
            raise ValueError(
                f"backend must be 'fast', 'exact' or 'class', got {self.backend!r}"
            )
        self._validate_pool_args()

    # ------------------------------------------------------------------

    def run(
        self,
        game: Game,
        *,
        runs: int,
        policy=None,
        scheduler=None,
        seed=None,
        allowed=None,
        stream: bool = False,
    ) -> Any:
        """*runs* trajectories from random starts, in run-index order.

        Seeding matches :func:`repro.analysis.convergence.measure_convergence`:
        stream ``2i`` draws run *i*'s start, stream ``2i+1`` drives its
        engine, all spawned from ``SeedSequence(seed)`` (``seed`` may
        also be an existing ``SeedSequence``, as :func:`repro.run_many`
        hands out per-cell). ``allowed`` restricts miners to coin
        subsets (a restricted game's mask); starts are then drawn
        mask-valid, identically across every executor mode.

        With ``stream=True`` the per-run summaries are folded inside
        the workers and one :class:`CellStats` aggregate is returned
        instead of a list — same step counts, same seeding, less
        allocation and pool transport.
        """
        if runs < 1:
            raise ValueError(f"runs must be ≥ 1, got {runs}")
        root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        streams = root.spawn(2 * runs)
        seed_pairs = [(streams[2 * i], streams[2 * i + 1]) for i in range(runs)]
        return self._execute(game, policy, scheduler, seed_pairs, allowed=allowed, stream=stream)

    def run_grid(
        self,
        game: Game,
        *,
        policies: Sequence,
        schedulers: Sequence,
        runs_per_pair: int,
        seed: Optional[int] = None,
    ) -> Dict[Tuple[str, str], List[TrajectorySummary]]:
        """The seeds × schedulers × policies grid, one batch per pair.

        Each (policy, scheduler) pair gets an independent child seed, so
        adding or reordering pairs never changes another pair's runs.
        """
        pairs = [(policy, scheduler) for policy in policies for scheduler in schedulers]
        children = np.random.SeedSequence(seed).spawn(len(pairs))
        grid: Dict[Tuple[str, str], List[TrajectorySummary]] = {}
        for (policy, scheduler), child in zip(pairs, children):
            streams = child.spawn(2 * runs_per_pair)
            seed_pairs = [
                (streams[2 * i], streams[2 * i + 1]) for i in range(runs_per_pair)
            ]
            grid[(policy.name, scheduler.name)] = self._execute(
                game, policy, scheduler, seed_pairs
            )
        return grid

    # ------------------------------------------------------------------

    def _execute(
        self, game, policy, scheduler, seed_pairs, allowed=None, stream: bool = False
    ) -> Any:
        if self.executor == "vectorized":
            return self._execute_vectorized(
                game, policy, scheduler, seed_pairs, allowed, stream=stream
            )

        def make_chunks(chunk_size: int):
            # One payload per worker: ship the game once per chunk.
            return [
                (
                    game,
                    policy,
                    scheduler,
                    self.backend,
                    self.max_steps,
                    allowed,
                    start,
                    seed_pairs[start : start + chunk_size],
                    stream,
                )
                for start in range(0, len(seed_pairs), chunk_size)
            ]

        flat = self._execute_chunked(
            _run_chunk,
            (
                game,
                policy,
                scheduler,
                self.backend,
                self.max_steps,
                allowed,
                0,
                seed_pairs,
                stream,
            ),
            make_chunks,
            len(seed_pairs),
        )
        if stream:
            # One partial CellStats per contiguous chunk, in chunk order.
            return CellStats.merge(flat)
        return flat

    def _execute_vectorized(
        self, game, policy, scheduler, seed_pairs, allowed=None, stream: bool = False
    ) -> Any:
        from repro.kernel.tensor import run_trajectory_population
        from repro.learning.policies import RandomImprovingPolicy
        from repro.learning.schedulers import UniformRandomScheduler

        jobs, kernel = build_vector_jobs(
            game,
            policy=policy,
            scheduler=scheduler,
            seed_pairs=seed_pairs,
            allowed=allowed,
            max_steps=self.max_steps,
            backend=self.backend,
        )
        outcomes = run_trajectory_population(jobs)
        policy_name = (policy if policy is not None else RandomImprovingPolicy()).name
        scheduler_name = (
            scheduler if scheduler is not None else UniformRandomScheduler()
        ).name
        coin_names = kernel.coin_names
        if stream:
            return fold_outcomes(outcomes, coin_names, policy_name, scheduler_name)
        return [
            TrajectorySummary(
                run_index=index,
                policy_name=policy_name,
                scheduler_name=scheduler_name,
                steps=outcome.steps,
                converged=outcome.converged,
                final_coins=tuple(coin_names[j] for j in outcome.final_assign),
            )
            for index, outcome in enumerate(outcomes)
        ]


def fold_outcomes(
    outcomes: Sequence[Any],
    coin_names: Sequence[str],
    policy_name: str,
    scheduler_name: str,
) -> CellStats:
    """Fold tensor-kernel trajectory outcomes into a :class:`CellStats`."""
    steps: List[int] = []
    converged = 0
    finals: Dict[Tuple[str, ...], int] = {}
    for outcome in outcomes:
        steps.append(outcome.steps)
        converged += bool(outcome.converged)
        key = tuple(coin_names[j] for j in outcome.final_assign)
        finals[key] = finals.get(key, 0) + 1
    return CellStats(
        runs=len(steps),
        policy_name=policy_name,
        scheduler_name=scheduler_name,
        steps=tuple(steps),
        converged=converged,
        finals=tuple(sorted(finals.items())),
    )


def run_trajectory_batch(
    game: Game,
    *,
    runs: int,
    policy=None,
    scheduler=None,
    seed: Optional[int] = None,
    backend: str = "fast",
    executor: str = "auto",
    max_workers: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> List[TrajectorySummary]:
    """Functional one-shot form of :meth:`BatchRunner.run`."""
    with BatchRunner(
        backend=backend,
        executor=executor,
        max_workers=max_workers,
        max_steps=max_steps,
    ) as runner:
        return runner.run(game, runs=runs, policy=policy, scheduler=scheduler, seed=seed)
