"""Dynamic reward design (paper Section 5): mechanism, stages, costs, baselines."""

from repro.design.cost import CostLedger, PhaseCost, phase_cost
from repro.design.mechanism import DynamicRewardDesign, MechanismResult, StageReport
from repro.design.naive import (
    NaiveResult,
    proportional_boost_design,
    single_shot_design,
)
from repro.design.reward_design import stage1_rewards, stage_rewards
from repro.design.stages import (
    anchor_index,
    in_stage_set,
    intermediate_configuration,
    mover_index,
    ordered_miners,
    progress_rank,
    progress_vector,
)

__all__ = [
    "CostLedger",
    "PhaseCost",
    "phase_cost",
    "DynamicRewardDesign",
    "MechanismResult",
    "StageReport",
    "NaiveResult",
    "proportional_boost_design",
    "single_shot_design",
    "stage1_rewards",
    "stage_rewards",
    "anchor_index",
    "in_stage_set",
    "intermediate_configuration",
    "mover_index",
    "ordered_miners",
    "progress_rank",
    "progress_vector",
]
