"""Naive reward-design baselines (ablation for E10).

The staged mechanism looks heavyweight — why not just boost the target
coins once and let the market sort itself out? These baselines make the
answer measurable: single-shot designs leave learning free to converge
to *any* equilibrium of the boosted game, and usually that is not the
desired one.

* :func:`single_shot_design` — design one reward function under which
  the target *is* an equilibrium (the one-shot analogue of Eq. 4: give
  every coin reward ``K·M_c(s_f)``), run one learning phase, revert to
  the organic rewards, run learning again, and report where the system
  actually landed.
* :func:`proportional_boost_design` — scale each coin's reward by how
  much power the target wants on it relative to the start; the kind of
  heuristic a practitioner might try first.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.core.coin import Coin, RewardFunction
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.design.cost import CostLedger, phase_cost
from repro.exceptions import NotAnEquilibriumError
from repro.learning.engine import LearningEngine
from repro.learning.policies import BetterResponsePolicy
from repro.learning.schedulers import ActivationScheduler
from repro.util.rng import RngLike, make_rng


@dataclass
class NaiveResult:
    """Outcome of a naive (single-phase) reward design attempt."""

    success: bool
    final: Configuration
    #: Where learning converged while the boost was active.
    boosted_final: Configuration
    ledger: CostLedger
    steps: int


def _run_two_phases(
    game: Game,
    designed: RewardFunction,
    initial: Configuration,
    target: Configuration,
    policy: Optional[BetterResponsePolicy],
    scheduler: Optional[ActivationScheduler],
    seed: RngLike,
) -> NaiveResult:
    """Boost → converge → revert → converge, then compare with target."""
    rng = make_rng(seed)
    engine = LearningEngine(policy=policy, scheduler=scheduler, record_configurations=False)
    ledger = CostLedger()

    boosted = engine.run(game.with_rewards(designed), initial, seed=rng)
    ledger.add(phase_cost(game, designed, stage=1, iteration=1, steps=boosted.length))
    settled = engine.run(game, boosted.final, seed=rng)
    return NaiveResult(
        success=settled.final == target,
        final=settled.final,
        boosted_final=boosted.final,
        ledger=ledger,
        steps=boosted.length + settled.length,
    )


def single_shot_design(
    game: Game,
    initial: Configuration,
    target: Configuration,
    *,
    policy: Optional[BetterResponsePolicy] = None,
    scheduler: Optional[ActivationScheduler] = None,
    seed: RngLike = None,
) -> NaiveResult:
    """One-shot design: make the target an equilibrium, hope learning finds it.

    The designed rewards give every coin ``K·M_c(s_f)`` with ``K`` large
    enough that no coin's reward drops below its organic value, so the
    target is stable in the designed game and the boost is feasible.
    The failure mode this baseline demonstrates: the designed game has
    *other* equilibria too, and arbitrary learning may stop in one of
    them, after which reverting strands the system off-target.
    """
    if not game.is_stable(target):
        raise NotAnEquilibriumError("target configuration is not stable under F")
    # K = max_c F(c)/M_c(s_f) over coins the target occupies ⇒ K·M_c ≥ F(c).
    scale = Fraction(0)
    for coin in game.coins:
        mass = game.coin_power(coin, target)
        if mass > 0:
            scale = max(scale, game.rewards[coin] / mass)
    values: Dict[Coin, Fraction] = {}
    for coin in game.coins:
        mass = game.coin_power(coin, target)
        values[coin] = scale * mass if mass > 0 else game.rewards[coin]
    designed = RewardFunction.allowing_zero(values)
    return _run_two_phases(game, designed, initial, target, policy, scheduler, seed)


def proportional_boost_design(
    game: Game,
    initial: Configuration,
    target: Configuration,
    *,
    policy: Optional[BetterResponsePolicy] = None,
    scheduler: Optional[ActivationScheduler] = None,
    seed: RngLike = None,
) -> NaiveResult:
    """Heuristic design: boost each coin by its desired power growth.

    ``H(c) = F(c) · max(1, M_c(s_f)/M_c(s_0))`` — coins that should gain
    miners get proportionally sweetened, others stay at their organic
    reward. No stability guarantee at all; included as the "what a
    practitioner would try" baseline.
    """
    if not game.is_stable(target):
        raise NotAnEquilibriumError("target configuration is not stable under F")
    values: Dict[Coin, Fraction] = {}
    for coin in game.coins:
        now = game.coin_power(coin, initial)
        want = game.coin_power(coin, target)
        if now > 0 and want > now:
            factor = want / now
        else:
            factor = Fraction(1)
        values[coin] = game.rewards[coin] * max(factor, Fraction(1))
    designed = RewardFunction(values)
    return _run_two_phases(game, designed, initial, target, policy, scheduler, seed)
