"""The dynamic reward design mechanism (paper Algorithms 1 and 2).

Given two equilibria ``s0, sf`` of ``G_{Π,C,F}``, the mechanism walks
the system from ``s0`` to ``sf`` through the stage milestones ``s^1,
…, s^n = sf`` of Eq. 3. Each loop iteration designs a reward function
(Eqs. 4–5), lets *arbitrary* better-response learning converge in the
designed game, and repeats until the stage milestone is reached.
Lemma 1 confines each stage's learning to ``T_i`` and forces the mover
to its destination; Theorem 2's potential ``Φ_i`` bounds the loop count.

The runner optionally *audits* those paper invariants at runtime (on by
default): every violation raises instead of silently producing a wrong
reproduction. In ``mode="feasible"`` (designed rewards never drop below
the organic ``F``) the ``T_i`` invariant can genuinely break — miners
may escape to an off-stage coin whose organic reward is too attractive
— and the mechanism then recovers by re-converging under ``F`` and
restarting, counting the restart in the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.design.cost import CostLedger, phase_cost
from repro.design.reward_design import DesignMode, stage1_rewards, stage_rewards
from repro.design.stages import (
    in_stage_set,
    intermediate_configuration,
    mover_index,
    ordered_miners,
    progress_rank,
)
from repro.exceptions import NotAnEquilibriumError, RewardDesignError
from repro.learning.engine import LearningEngine
from repro.learning.policies import BetterResponsePolicy
from repro.learning.schedulers import ActivationScheduler
from repro.util.rng import RngLike, make_rng


@dataclass(frozen=True)
class StageReport:
    """Measured outcome of one stage of Algorithm 2."""

    stage: int
    #: Loop iterations (reward designs) the stage needed.
    iterations: int
    #: Total better-response steps across the stage's learning phases.
    steps: int


@dataclass
class MechanismResult:
    """Outcome of one full mechanism run."""

    success: bool
    final: Configuration
    stage_reports: List[StageReport] = field(default_factory=list)
    ledger: CostLedger = field(default_factory=CostLedger)
    #: Times the feasible mode had to restart after a T_i escape.
    restarts: int = 0

    @property
    def total_steps(self) -> int:
        return sum(report.steps for report in self.stage_reports)

    @property
    def total_iterations(self) -> int:
        return sum(report.iterations for report in self.stage_reports)


class DynamicRewardDesign:
    """Algorithm 2 runner.

    Parameters
    ----------
    policy, scheduler:
        The better-response learner used inside each phase. The paper's
        guarantee is for *arbitrary* learners, so any valid pair works;
        adversarial pairs (e.g. ``MinimalGainPolicy`` ×
        ``SmallestFirstScheduler``) are the interesting stress test.
    mode:
        ``"paper"`` follows Eq. 4 literally (empty coins get reward 0);
        ``"feasible"`` floors designed rewards at the organic ``F``.
    audit:
        Verify Lemma 1 / Theorem 2 invariants during the run.
    max_iterations_per_stage:
        Safety valve; Theorem 2 bounds iterations by ``2^(n−i+1)``, and
        in practice stages take ``≤ n`` iterations.
    max_restarts:
        Feasible-mode recovery budget.
    """

    def __init__(
        self,
        *,
        policy: Optional[BetterResponsePolicy] = None,
        scheduler: Optional[ActivationScheduler] = None,
        mode: DesignMode = "paper",
        audit: bool = True,
        max_iterations_per_stage: int = 10_000,
        max_steps_per_phase: int = 1_000_000,
        max_restarts: int = 25,
    ):
        if mode not in ("paper", "feasible"):
            raise RewardDesignError(f"unknown design mode {mode!r}")
        self.mode: DesignMode = mode
        self.audit = audit
        self.max_iterations_per_stage = max_iterations_per_stage
        self.max_restarts = max_restarts
        self._engine = LearningEngine(
            policy=policy,
            scheduler=scheduler,
            max_steps=max_steps_per_phase,
            record_configurations=False,
        )

    # ------------------------------------------------------------------

    def run(
        self,
        game: Game,
        initial: Configuration,
        target: Configuration,
        *,
        seed: RngLike = None,
    ) -> MechanismResult:
        """Move *game* from equilibrium *initial* to equilibrium *target*.

        Both endpoints must be stable under the game's base rewards
        (Algorithm 1's contract); violating endpoints raise
        :class:`NotAnEquilibriumError`.
        """
        game.validate_configuration(initial)
        game.validate_configuration(target)
        if not game.is_stable(initial):
            raise NotAnEquilibriumError("initial configuration is not stable under F")
        if not game.is_stable(target):
            raise NotAnEquilibriumError("target configuration is not stable under F")
        ordered_miners(game)  # validates strictly decreasing powers

        rng = make_rng(seed)
        result = MechanismResult(success=False, final=initial)
        current = initial
        restarts = 0
        while True:
            outcome = self._attempt(game, current, target, rng, result)
            if outcome is not None:
                result.success = True
                result.final = outcome
                result.restarts = restarts
                return result
            # Feasible-mode escape: re-converge under the organic rewards
            # and retry from whatever equilibrium the market settles in.
            restarts += 1
            if restarts > self.max_restarts:
                raise RewardDesignError(
                    f"mechanism exceeded {self.max_restarts} restarts in feasible mode"
                )
            current = self._engine.run(game, result.final, seed=rng).final

    # ------------------------------------------------------------------

    def _attempt(
        self,
        game: Game,
        initial: Configuration,
        target: Configuration,
        rng,
        result: MechanismResult,
    ) -> Optional[Configuration]:
        """One full pass of Algorithm 2; ``None`` signals a T_i escape."""
        current = initial
        n = len(game.miners)
        for stage in range(1, n + 1):
            milestone = intermediate_configuration(game, target, stage)
            iterations = 0
            steps = 0
            while current != milestone:
                iterations += 1
                if iterations > self.max_iterations_per_stage:
                    raise RewardDesignError(
                        f"stage {stage} exceeded {self.max_iterations_per_stage} "
                        "iterations; Theorem 2 guarantees termination, so this "
                        "indicates a bug or an adversarial custom learner"
                    )
                rank_before = (
                    progress_rank(game, target, stage, current) if stage > 1 else None
                )
                mover_before = (
                    mover_index(game, target, stage, current) if stage > 1 else None
                )
                config_before = current
                if stage == 1:
                    designed = stage1_rewards(game, target, mode=self.mode)
                else:
                    designed = stage_rewards(
                        game, target, stage, current, mode=self.mode
                    )
                trajectory = self._engine.run(game.with_rewards(designed), current, seed=rng)
                current = trajectory.final
                steps += trajectory.length
                result.ledger.add(
                    phase_cost(
                        game,
                        designed,
                        stage=stage,
                        iteration=iterations,
                        steps=trajectory.length,
                    )
                )
                if stage > 1 and not in_stage_set(game, target, stage, current):
                    if self.mode == "feasible":
                        result.final = current
                        return None
                    raise RewardDesignError(
                        f"learning escaped T_{stage} in paper mode; Lemma 1 is "
                        "violated — this is a bug"
                    )
                if self.audit and stage > 1:
                    try:
                        self._audit_iteration(
                            game,
                            target,
                            stage,
                            current,
                            rank_before,
                            mover_before,
                            config_before,
                        )
                    except RewardDesignError:
                        if self.mode != "feasible":
                            raise
                        # Feasible-mode floors can over-attract the
                        # destination, breaking Lemma 1's script while
                        # staying inside T_i. Recover like an escape.
                        result.final = current
                        return None
            result.stage_reports.append(
                StageReport(stage=stage, iterations=iterations, steps=steps)
            )
        if current != target:
            raise RewardDesignError(
                "mechanism completed all stages but did not reach the target; "
                "this is a bug"
            )
        return current

    def _audit_iteration(
        self,
        game: Game,
        target: Configuration,
        stage: int,
        current: Configuration,
        rank_before: Optional[int],
        mover_before: Optional[int],
        config_before: Optional[Configuration] = None,
    ) -> None:
        """Check Lemma 1(1)-(2) and Theorem 2's Φ monotonicity per phase."""
        miners = ordered_miners(game)
        destination = target.coin_of(miners[stage - 1])
        if mover_before is not None:
            mover = miners[mover_before - 1]
            if current.coin_of(mover) != destination:
                raise RewardDesignError(
                    f"Lemma 1 violated in stage {stage}: mover p{mover_before} is not "
                    "on the destination coin after the phase"
                )
            if config_before is not None:
                # Lemma 1(1): every miner indexed below the mover keeps
                # its pre-phase coin.
                for index in range(mover_before - 1):
                    miner = miners[index]
                    if current.coin_of(miner) != config_before.coin_of(miner):
                        raise RewardDesignError(
                            f"Lemma 1 violated in stage {stage}: miner "
                            f"p{index + 1} moved during the phase although it "
                            "is above the mover"
                        )
        if rank_before is not None:
            rank_after = progress_rank(game, target, stage, current)
            if rank_after <= rank_before:
                raise RewardDesignError(
                    f"Theorem 2 violated in stage {stage}: Φ did not increase "
                    f"({rank_before} → {rank_after})"
                )
