"""Manipulation-cost accounting for the reward design mechanism.

Algorithm 1's selling point is that the manipulator pays a *bounded*
cost (rewards are inflated only while learning converges) and then
enjoys the better equilibrium indefinitely. This module makes that cost
measurable: each learning phase holds a designed reward function for a
number of rounds, and the manipulator pays the excess
``max(H(c) − F(c), 0)`` per coin per round.

Rounds are an abstract time unit — one better-response step plus one
settling round per phase. The market layer
(:mod:`repro.manipulation.whale`) converts rounds and excess reward to
concrete fee spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List

from repro.core.coin import RewardFunction
from repro.core.game import Game


@dataclass(frozen=True)
class PhaseCost:
    """Cost of holding one designed reward function for one learning phase."""

    stage: int
    iteration: int
    #: Sum over coins of max(H(c) − F(c), 0): excess reward paid per round.
    excess_per_round: Fraction
    #: Number of rounds the designed rewards were held (steps + 1).
    rounds: int

    @property
    def total(self) -> Fraction:
        return self.excess_per_round * self.rounds


def phase_cost(
    game: Game,
    designed: RewardFunction,
    *,
    stage: int,
    iteration: int,
    steps: int,
) -> PhaseCost:
    """Build a :class:`PhaseCost` for one phase of *steps* learning steps."""
    base = game.rewards
    excess = Fraction(0)
    for coin in game.coins:
        delta = designed[coin] - base[coin]
        if delta > 0:
            excess += delta
    return PhaseCost(
        stage=stage,
        iteration=iteration,
        excess_per_round=excess,
        rounds=steps + 1,
    )


@dataclass
class CostLedger:
    """All phase costs of one mechanism run, with summary statistics."""

    phases: List[PhaseCost] = field(default_factory=list)

    def add(self, cost: PhaseCost) -> None:
        self.phases.append(cost)

    def total(self) -> Fraction:
        """Total excess reward paid across the whole mechanism run."""
        return sum((phase.total for phase in self.phases), Fraction(0))

    def peak_excess_per_round(self) -> Fraction:
        """The largest per-round boost any single phase required.

        Stage 1 dominates: it must out-bid every coin at once. This is
        the manipulator's working-capital requirement.
        """
        if not self.phases:
            return Fraction(0)
        return max(phase.excess_per_round for phase in self.phases)

    def total_rounds(self) -> int:
        return sum(phase.rounds for phase in self.phases)

    def phase_count(self) -> int:
        return len(self.phases)
