"""Stage machinery for the dynamic reward design algorithm (Section 5.1).

The mechanism moves the system to the desired equilibrium ``s_f`` in
``n`` stages. Stage ``i`` parks every miner ``p_i..p_n`` on coin
``s_f.p_i`` while miners ``p_1..p_{i-1}`` already sit at their final
coins. This module implements the combinatorial scaffolding:

* the intermediate configurations ``s^i`` (paper Eq. 3),
* the stage sets ``T_i`` that Lemma 1 proves learning stays inside,
* the *mover* index ``m_i(s)`` and *anchor* index ``a_i(s)``,
* the termination potential ``Φ_i`` of Theorem 2 (rank of the binary
  occupancy vector).

Miners here are always indexed 1-based in strictly decreasing power
order, matching the paper.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner, has_strictly_decreasing_powers, sorted_by_power
from repro.exceptions import RewardDesignError


def ordered_miners(game: Game) -> Tuple[Miner, ...]:
    """The game's miners in strictly decreasing power order.

    Section 5 requires ``m_p1 > m_p2 > … > m_pn``; duplicate powers make
    the mover/anchor argument ill-defined, so they are rejected.
    """
    miners = sorted_by_power(game.miners)
    if not has_strictly_decreasing_powers(miners):
        raise RewardDesignError(
            "the reward design mechanism requires strictly decreasing mining powers; "
            "this game has duplicates"
        )
    return miners


def intermediate_configuration(
    game: Game, target: Configuration, stage: int
) -> Configuration:
    """The stage-``i`` milestone ``s^i`` of Eq. 3.

    ``s^i.p_k = s_f.p_k`` for ``k ≤ i`` and ``s^i.p_k = s_f.p_i`` for
    ``k > i``. Note ``s^n = s_f``.
    """
    miners = ordered_miners(game)
    n = len(miners)
    if not 1 <= stage <= n:
        raise RewardDesignError(f"stage must be in [1, {n}], got {stage}")
    anchor_coin = target.coin_of(miners[stage - 1])
    assignment = {}
    for index, miner in enumerate(miners, start=1):
        assignment[miner] = target.coin_of(miner) if index <= stage else anchor_coin
    return Configuration.from_mapping(game.miners, assignment)


def in_stage_set(game: Game, target: Configuration, stage: int, config: Configuration) -> bool:
    """Membership in ``T_i``: the configurations stage ``i`` can visit.

    ``T_i`` fixes miners ``p_1..p_{i-1}`` at their final coins and
    confines ``p_i..p_n`` to ``{s_f.p_i, s_f.p_{i-1}}``. Defined for
    ``stage ≥ 2`` (stage 1 is unconstrained).
    """
    miners = ordered_miners(game)
    if stage < 2:
        raise RewardDesignError("T_i is defined for stages i ≥ 2")
    allowed = {
        target.coin_of(miners[stage - 1]),  # s_f.p_i
        target.coin_of(miners[stage - 2]),  # s_f.p_{i-1}
    }
    for index, miner in enumerate(miners, start=1):
        if index <= stage - 1:
            if config.coin_of(miner) != target.coin_of(miner):
                return False
        elif config.coin_of(miner) not in allowed:
            return False
    return True


def mover_index(
    game: Game, target: Configuration, stage: int, config: Configuration
) -> int:
    """``m_i(s) = min{ j | ∀ l, j < l ≤ n : s.p_l = s_f.p_i }`` (1-based).

    The mover is the largest-indexed prefix boundary: every miner after
    it already sits on the stage's destination coin. Only defined for
    ``s ∈ T_i \\ {s^i}``.
    """
    miners = ordered_miners(game)
    n = len(miners)
    destination = target.coin_of(miners[stage - 1])
    j = n
    while j >= 1 and config.coin_of(miners[j - 1]) == destination:
        j -= 1
    if j == 0:
        raise RewardDesignError(
            "mover is undefined: every miner already sits on the stage destination "
            "(configuration is s^i)"
        )
    if j < stage:
        raise RewardDesignError(
            f"mover index {j} fell below stage index {stage}; configuration is "
            "outside T_i — the stage invariant was violated"
        )
    return j


def anchor_index(
    game: Game, target: Configuration, stage: int, config: Configuration
) -> int:
    """``a_i(s) = m_i(s) − 1``: the miner one power-rank above the mover.

    The reward design makes the destination coin exactly unattractive
    enough that the anchor (and everyone bigger) stays put while the
    mover strictly prefers to move.
    """
    return mover_index(game, target, stage, config) - 1


def progress_vector(
    game: Game, target: Configuration, stage: int, config: Configuration
) -> Tuple[int, ...]:
    """The binary occupancy vector ``vec(s)`` of Theorem 2.

    Entry ``j`` (0-based) is 1 iff miner ``p_{j+i-1}`` (1-based paper
    indexing) already mines the stage destination ``s_f.p_i``.
    """
    miners = ordered_miners(game)
    destination = target.coin_of(miners[stage - 1])
    return tuple(
        1 if config.coin_of(miners[index - 1]) == destination else 0
        for index in range(stage, len(miners) + 1)
    )


def progress_rank(
    game: Game, target: Configuration, stage: int, config: Configuration
) -> int:
    """``Φ_i(s)``: the lexicographic rank of ``vec(s)``.

    For binary vectors lexicographic rank is the value of the vector
    read as a big-endian binary number; Theorem 2 shows it strictly
    increases across stage-``i`` loop iterations, bounding their count.
    """
    rank = 0
    for bit in progress_vector(game, target, stage, config):
        rank = (rank << 1) | bit
    return rank
