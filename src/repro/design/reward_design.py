"""The reward design functions ``H_1`` and ``H_i`` (paper Eqs. 4–5).

Stage 1 gives the destination coin a reward so large that the unique
equilibrium has *every* miner on it. Stages ``i > 1`` use the
mover/anchor construction: even out all RPUs at ``R(s)`` (the maximum
RPU of the current configuration under the *base* rewards) and lift the
destination's reward to ``R(s)·(M_dest(s) + m_anchor)`` — exactly high
enough that the mover strictly gains by joining while the anchor and
every larger miner would not.

Two faithful-vs-feasible notes, recorded here and in DESIGN.md:

* **Stage 1 magnitude.** Eq. 5 uses ``max F · Σ m_p``, which is
  sufficient only when every mining power is ≥ 1 (the paper's "powers
  in billions of hashes" convention). We use the scale-invariant
  ``2 · max F · Σ m_p / min m_p``, which dominates the requirement
  ``H_1 > max F · Σ m_p / min m_p`` derived from the stage-1 stability
  analysis for *any* power scale.
* **Empty coins.** Eq. 4 assigns ``R(s)·M_c(s) = 0`` to unoccupied
  coins, which contradicts Algorithm 1's side condition
  ``H(s)(c) ≥ F(c)`` (you cannot *reduce* a coin's organic reward in
  practice). ``mode="paper"`` follows Eq. 4 literally, zeroing empty
  coins — this is what makes Lemma 1's invariants airtight.
  ``mode="feasible"`` repairs the inconsistency properly: it raises the
  equalization level from ``R(s)`` to

      ``K = max(R(s), F(dest)/(M_dest + m_anchor),
                max_{empty c'' ≠ dest} F(c'')/min_p m_p)``

  so that every coin can be held at or above its organic reward while
  the mover keeps a unique better response and the anchor (and larger
  miners, and would-be escapees to empty coins) stay put. With an
  occupied destination and no empty coins, ``K = R(s)`` and the design
  coincides with Eq. 4 — feasibility costs extra boost only when the
  paper's design would have been infeasible anyway. The mechanism still
  monitors the ``T_i`` invariant at runtime as a defense-in-depth and
  restarts on any escape (see :mod:`repro.design.mechanism`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Literal

from repro.core.coin import Coin, RewardFunction
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.design.stages import anchor_index, ordered_miners
from repro.exceptions import RewardDesignError

DesignMode = Literal["paper", "feasible"]


def stage1_rewards(
    game: Game,
    target: Configuration,
    *,
    mode: DesignMode = "paper",
) -> RewardFunction:
    """``H_1``: make ``s_f.p_1`` dominate every alternative (Eq. 5).

    Under the returned rewards the unique pure equilibrium is "everyone
    on ``s_f.p_1``", so any better-response learning converges to
    ``s^1`` in one phase. Both modes agree here (stage 1 only *raises*
    one coin's reward).
    """
    miners = ordered_miners(game)
    destination = target.coin_of(miners[0])
    boost = 2 * game.rewards.max_reward() * game.total_power() / game.min_power()
    overrides: Dict[Coin, Fraction] = {destination: boost}
    return game.rewards.replacing(overrides)


def stage_rewards(
    game: Game,
    target: Configuration,
    stage: int,
    config: Configuration,
    *,
    mode: DesignMode = "paper",
) -> RewardFunction:
    """``H_i(s)`` for a stage ``i > 1`` iteration starting at *config* (Eq. 4).

    All coins other than the destination get reward ``R(s)·M_c(s)``
    (equalizing their RPUs at ``R(s)``); the destination gets
    ``R(s)·(M_dest(s) + m_{a_i(s)})`` where ``a_i(s)`` is the anchor.
    ``R(s)`` is the maximum RPU of *config* under the game's **base**
    reward function, over occupied coins.
    """
    if stage < 2:
        raise RewardDesignError("stage_rewards implements Eq. 4, defined for stages i ≥ 2")
    miners = ordered_miners(game)
    destination = target.coin_of(miners[stage - 1])
    anchor = miners[anchor_index(game, target, stage, config) - 1]
    destination_mass = game.coin_power(destination, config)
    ceiling = game.max_rpu(config)

    if mode == "feasible":
        # Lift the equalization level K above R(s) just enough that the
        # whole design can respect H(c) ≥ F(c) (Algorithm 1 line 3)
        # while keeping the mover/anchor structure intact:
        #   • K ≥ F(dest)/(M_dest + m_anchor) makes the destination's
        #     designed reward K·(M_dest + m_anchor) ≥ F(dest);
        #   • K ≥ F(c'')/m_min for every unoccupied c'' ≠ dest lets c''
        #     keep its organic reward without attracting anyone (a lone
        #     joiner would earn F(c'') ≤ m_min·K ≤ its current m_p·K).
        # When the destination is occupied and no coin is empty, K
        # collapses to R(s) and the design coincides with Eq. 4.
        ceiling = max(ceiling, game.rewards[destination] / (destination_mass + anchor.power))
        minimum_power = game.min_power()
        for coin in game.coins:
            if coin != destination and game.coin_power(coin, config) == 0:
                ceiling = max(ceiling, game.rewards[coin] / minimum_power)

    values: Dict[Coin, Fraction] = {}
    for coin in game.coins:
        mass = game.coin_power(coin, config)
        if coin == destination:
            values[coin] = ceiling * (mass + anchor.power)
        elif mass == 0 and mode == "feasible":
            values[coin] = game.rewards[coin]
        else:
            values[coin] = ceiling * mass
    return RewardFunction.allowing_zero(values)
