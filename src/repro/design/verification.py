"""Standalone auditors for reward designs (Algorithm 1's contract).

The mechanism in :mod:`repro.design.mechanism` audits itself; this
module exposes the same checks (and a few more) as a public API so
users composing *their own* reward design functions can verify them
before deploying:

* :func:`check_feasible` — Algorithm 1 line 3: ``H(c) ≥ F(c)`` for all
  coins (you can add whale fees; you cannot remove organic rewards).
* :func:`check_unique_mover` — Lemma 1's entry condition: in the
  designed game exactly one miner is unstable and it has exactly one
  improving move, to the intended destination.
* :func:`check_anchor_holds` — the anchor (and every larger miner off
  the destination) would not gain by joining the destination.
* :func:`audit_stage_design` — all of the above for one stage-``i``
  iteration, returning a structured report instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.coin import Coin, RewardFunction
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.design.stages import anchor_index, mover_index, ordered_miners


@dataclass
class DesignAudit:
    """Outcome of auditing one designed reward function."""

    feasible: bool
    unique_mover: bool
    anchor_holds: bool
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.feasible and self.unique_mover and self.anchor_holds


def check_feasible(game: Game, designed: RewardFunction) -> List[str]:
    """Coins whose designed reward dips below the organic one.

    Empty list = feasible. The paper's Eq. 4 fails this for unoccupied
    coins (it zeroes them); ``mode="feasible"`` designs pass.
    """
    problems = []
    for coin in game.coins:
        if designed[coin] < game.rewards[coin]:
            problems.append(
                f"{coin.name}: designed reward {designed[coin]} is below the "
                f"organic {game.rewards[coin]}"
            )
    return problems


def check_unique_mover(
    game: Game,
    designed: RewardFunction,
    config: Configuration,
    expected_mover_name: str,
    destination: Coin,
) -> List[str]:
    """Verify exactly one unstable miner with exactly one move.

    Returns human-readable problems (empty = the Lemma 1 entry
    condition holds).
    """
    designed_game = game.with_rewards(designed)
    unstable = designed_game.unstable_miners(config)
    problems = []
    if len(unstable) != 1:
        problems.append(
            f"expected exactly one unstable miner, found "
            f"{[m.name for m in unstable]}"
        )
        return problems
    mover = unstable[0]
    if mover.name != expected_mover_name:
        problems.append(
            f"unstable miner is {mover.name!r}, expected {expected_mover_name!r}"
        )
    moves = designed_game.better_response_moves(mover, config)
    if len(moves) != 1 or moves[0] != destination:
        problems.append(
            f"mover's improving moves are {[c.name for c in moves]}, expected "
            f"exactly [{destination.name!r}]"
        )
    return problems


def check_anchor_holds(
    game: Game,
    designed: RewardFunction,
    config: Configuration,
    anchor_name: str,
    destination: Coin,
) -> List[str]:
    """Verify the anchor and every larger off-destination miner stays.

    The designed destination reward must be exactly low enough that
    joining is *not* improving for any miner with power at or above the
    anchor's.
    """
    designed_game = game.with_rewards(designed)
    anchor = game.miner_named(anchor_name)
    problems = []
    for miner in game.miners:
        if miner.power < anchor.power:
            continue
        if config.coin_of(miner) == destination:
            continue
        if designed_game.is_better_response(miner, destination, config):
            problems.append(
                f"{miner.name} (power ≥ anchor) would gain by joining "
                f"{destination.name}"
            )
    return problems


def audit_stage_design(
    game: Game,
    target: Configuration,
    stage: int,
    config: Configuration,
    designed: RewardFunction,
) -> DesignAudit:
    """Full audit of a stage-``i > 1`` designed reward function."""
    miners = ordered_miners(game)
    destination = target.coin_of(miners[stage - 1])
    mover = miners[mover_index(game, target, stage, config) - 1]
    anchor = miners[anchor_index(game, target, stage, config) - 1]

    feasibility = check_feasible(game, designed)
    mover_problems = check_unique_mover(
        game, designed, config, mover.name, destination
    )
    anchor_problems = check_anchor_holds(
        game, designed, config, anchor.name, destination
    )
    return DesignAudit(
        feasible=not feasibility,
        unique_mover=not mover_problems,
        anchor_holds=not anchor_problems,
        problems=feasibility + mover_problems + anchor_problems,
    )
